//! The replicated retry-outcome window.
//!
//! MAMS §IV-C answers duplicated client requests from a per-client response
//! cache instead of re-executing them. PR 10 makes that cache *replicated
//! state*: every journaled batch carries [`AckRecord`]s binding records to
//! the `(client, seq)` requests they settle, and every replica that replays
//! the batch folds the settled outcome into its [`RetryWindow`]. A freshly
//! promoted active seeds its response cache from the replayed window, so a
//! retry of a committed-but-unacknowledged mutation is answered from cache
//! — exactly once across failover, with no checker escape hatch.
//!
//! Reply payloads are **not** journaled. The outcome of a journaled
//! mutation is a deterministic function of the record and the namespace
//! state at its apply point ([`replay_outcome`]): `Create` returns the
//! file's info as of creation, `AddBlock` the block id riding in the
//! record, everything else `Done`. Replay applies records in execution
//! order, so the reconstructed outcome is identical to the one the
//! original active sent.
//!
//! The window also rides inside namespace images and MDLT deltas (one
//! length-prefixed section each) so a junior restored from base + deltas
//! still holds it. Eviction is deterministic — per-client bound, lowest
//! seq first — which keeps the window a pure function of the journal
//! prefix on every replica (the replay-parity invariant tests assert).

use std::collections::BTreeMap;

use mams_journal::hash::{peek_varint, HashingBuf, Varint};
use mams_journal::Txn;

use crate::image::ImageError;
use crate::inode::FileInfo;

/// Default per-client entries remembered (matches the server's response
/// cache window).
pub const DEFAULT_WINDOW_CAP: usize = 128;

/// The reconstructed outcome of a journaled (hence successful) mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryOutcome {
    Done,
    /// Block id allocated by `AddBlock`.
    Block(u64),
    /// File info returned by `Create`.
    Info(FileInfo),
}

/// One settled request: its outcome, plus the ordering token when the ack
/// was speculative (`OpSpec` replies carry the record's txid).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryEntry {
    pub outcome: RetryOutcome,
    pub token: Option<u64>,
}

/// Bounded per-client map of settled `(client, seq) → outcome` entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryWindow {
    per_client: BTreeMap<u32, BTreeMap<u64, RetryEntry>>,
    cap: usize,
}

impl Default for RetryWindow {
    fn default() -> Self {
        Self::new()
    }
}

impl RetryWindow {
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_WINDOW_CAP)
    }

    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap >= 1);
        RetryWindow { per_client: BTreeMap::new(), cap }
    }

    /// Remember a settled request, evicting the lowest seq beyond the
    /// per-client bound. Deterministic: replicas folding the same journal
    /// prefix hold byte-identical windows.
    pub fn record(&mut self, client: u32, seq: u64, entry: RetryEntry) {
        let m = self.per_client.entry(client).or_default();
        m.insert(seq, entry);
        while m.len() > self.cap {
            let oldest = *m.keys().next().expect("non-empty");
            m.remove(&oldest);
        }
    }

    /// The remembered entry for an exact `(client, seq)`, if any.
    pub fn get(&self, client: u32, seq: u64) -> Option<&RetryEntry> {
        self.per_client.get(&client).and_then(|m| m.get(&seq))
    }

    /// Total entries across clients.
    pub fn len(&self) -> usize {
        self.per_client.values().map(BTreeMap::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.per_client.is_empty()
    }

    pub fn clear(&mut self) {
        self.per_client.clear();
    }

    /// Iterate `(client, seq, entry)` in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64, &RetryEntry)> {
        self.per_client.iter().flat_map(|(&c, m)| m.iter().map(move |(&s, e)| (c, s, e)))
    }

    /// Order-independent digest of the window contents (replay-parity
    /// assertions compare these across replicas).
    pub fn fingerprint(&self) -> u64 {
        mams_journal::fnv1a64(&self.encode_bytes())
    }

    // ---------------------------------------------------------------- wire

    /// Encode the window as a standalone byte section (ridden inside
    /// images and deltas, always under their checksums).
    pub fn encode_bytes(&self) -> Vec<u8> {
        let mut out = HashingBuf::with_capacity(64);
        out.put_varint(self.cap as u64);
        out.put_varint(self.per_client.len() as u64);
        for (&client, m) in &self.per_client {
            out.put_varint(client as u64);
            out.put_varint(m.len() as u64);
            for (&seq, e) in m {
                out.put_varint(seq);
                let kind: u8 = match &e.outcome {
                    RetryOutcome::Done => 0,
                    RetryOutcome::Block(_) => 1,
                    RetryOutcome::Info(_) => 2,
                };
                let flags = kind | if e.token.is_some() { 0x80 } else { 0 };
                out.put_u8(flags);
                if let Some(t) = e.token {
                    out.put_varint(t);
                }
                match &e.outcome {
                    RetryOutcome::Done => {}
                    RetryOutcome::Block(b) => out.put_varint(*b),
                    RetryOutcome::Info(i) => {
                        out.put_varint(i.path.len() as u64);
                        out.put_slice(i.path.as_bytes());
                        out.put_u8(i.is_dir as u8);
                        out.put_u16(i.perm);
                        out.put_u8(i.replication);
                        out.put_u8(i.sealed as u8);
                        out.put_varint(i.child_count as u64);
                        out.put_varint(i.blocks.len() as u64);
                        for b in &i.blocks {
                            out.put_varint(*b);
                        }
                    }
                }
            }
        }
        // The section rides under the artifact's checksum; its own trailer
        // would be redundant. `seal` appends one — strip it.
        let sealed = out.seal();
        sealed[..sealed.len() - 8].to_vec()
    }

    /// Decode a window section produced by [`encode_bytes`].
    pub fn decode_bytes(data: &[u8]) -> Result<RetryWindow, ImageError> {
        let mut r = SectionReader { w: data };
        let cap = r.varint()? as usize;
        if cap == 0 {
            return Err(ImageError::Corrupt("retry window cap 0".into()));
        }
        let mut win = RetryWindow::with_capacity(cap);
        let clients = r.varint()?;
        for _ in 0..clients {
            let client = r.varint()?;
            if client > u32::MAX as u64 {
                return Err(ImageError::Corrupt("retry window client id overflow".into()));
            }
            let n = r.varint()?;
            for _ in 0..n {
                let seq = r.varint()?;
                let flags = r.u8()?;
                let token = if flags & 0x80 != 0 { Some(r.varint()?) } else { None };
                let outcome = match flags & 0x7f {
                    0 => RetryOutcome::Done,
                    1 => RetryOutcome::Block(r.varint()?),
                    2 => {
                        let plen = r.varint()? as usize;
                        let path = std::str::from_utf8(r.take(plen)?)
                            .map_err(|_| ImageError::Corrupt("non-UTF-8 info path".into()))?
                            .to_string();
                        let is_dir = r.u8()? != 0;
                        let perm = r.u16()?;
                        let replication = r.u8()?;
                        let sealed = r.u8()? != 0;
                        let child_count = r.varint()? as usize;
                        let nblocks = r.varint()?;
                        let mut blocks = Vec::with_capacity(nblocks.min(1 << 16) as usize);
                        for _ in 0..nblocks {
                            blocks.push(r.varint()?);
                        }
                        RetryOutcome::Info(FileInfo {
                            path,
                            is_dir,
                            blocks,
                            replication,
                            sealed,
                            perm,
                            child_count,
                        })
                    }
                    k => return Err(ImageError::Corrupt(format!("bad retry outcome kind {k}"))),
                };
                win.record(client as u32, seq, RetryEntry { outcome, token });
            }
        }
        if !r.w.is_empty() {
            return Err(ImageError::Corrupt("trailing bytes after retry window".into()));
        }
        Ok(win)
    }
}

struct SectionReader<'a> {
    w: &'a [u8],
}

impl<'a> SectionReader<'a> {
    fn varint(&mut self) -> Result<u64, ImageError> {
        match peek_varint(self.w) {
            Varint::Val(v, n) => {
                self.w = &self.w[n..];
                Ok(v)
            }
            Varint::Need => Err(ImageError::Truncated),
            Varint::Bad => Err(ImageError::Corrupt("bad varint in retry window".into())),
        }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageError> {
        if self.w.len() < n {
            return Err(ImageError::Truncated);
        }
        let (head, rest) = self.w.split_at(n);
        self.w = rest;
        Ok(head)
    }
    fn u8(&mut self) -> Result<u8, ImageError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, ImageError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }
}

/// Reconstruct the outcome the active replied for a journaled mutation,
/// from the record and the namespace state **at its apply point** (call
/// right after applying the record, before the next one). `info` looks a
/// path up in that state.
pub fn replay_outcome<F>(info: F, txn: &Txn) -> RetryOutcome
where
    F: FnOnce(&str) -> Option<FileInfo>,
{
    match txn {
        // `create` answers with the fresh file's info; right after the
        // record applies, a lookup returns exactly that.
        Txn::Create { path, .. } => match info(path) {
            Some(i) => RetryOutcome::Info(i),
            // Unreachable for a record that just applied cleanly; degrade
            // to Done rather than poisoning replay.
            None => RetryOutcome::Done,
        },
        Txn::AddBlock { block_id, .. } => RetryOutcome::Block(*block_id),
        Txn::Mkdir { .. }
        | Txn::Delete { .. }
        | Txn::Rename { .. }
        | Txn::CloseFile { .. }
        | Txn::SetPerm { .. } => RetryOutcome::Done,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(path: &str) -> FileInfo {
        FileInfo {
            path: path.to_string(),
            is_dir: false,
            blocks: vec![7, 9],
            replication: 3,
            sealed: false,
            perm: 0o644,
            child_count: 0,
        }
    }

    fn sample() -> RetryWindow {
        let mut w = RetryWindow::new();
        w.record(1, 5, RetryEntry { outcome: RetryOutcome::Done, token: None });
        w.record(1, 6, RetryEntry { outcome: RetryOutcome::Block(42), token: Some(901) });
        w.record(9, 1, RetryEntry { outcome: RetryOutcome::Info(info("/a/b")), token: None });
        w
    }

    #[test]
    fn round_trips_through_bytes() {
        let w = sample();
        let enc = w.encode_bytes();
        let dec = RetryWindow::decode_bytes(&enc).unwrap();
        assert_eq!(dec, w);
        assert_eq!(dec.fingerprint(), w.fingerprint());
    }

    #[test]
    fn empty_window_round_trips() {
        let w = RetryWindow::new();
        let dec = RetryWindow::decode_bytes(&w.encode_bytes()).unwrap();
        assert!(dec.is_empty());
        assert_eq!(dec, w);
    }

    #[test]
    fn corruption_rejected_at_every_byte() {
        let enc = sample().encode_bytes();
        for i in 0..enc.len() {
            let mut bad = enc.clone();
            bad[i] = bad[i].wrapping_add(0x41);
            // Either an error or a *different* window — never a silent
            // equal decode (the artifact checksum covers real bit rot;
            // this guards the decoder's bounds).
            if let Ok(w) = RetryWindow::decode_bytes(&bad) {
                assert_ne!(w, sample(), "flip at byte {i} decoded to an equal window");
            }
        }
        for cut in 0..enc.len() {
            assert!(RetryWindow::decode_bytes(&enc[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn eviction_is_deterministic_lowest_seq_first() {
        let mut w = RetryWindow::with_capacity(2);
        w.record(3, 10, RetryEntry { outcome: RetryOutcome::Done, token: None });
        w.record(3, 11, RetryEntry { outcome: RetryOutcome::Done, token: None });
        w.record(3, 12, RetryEntry { outcome: RetryOutcome::Done, token: None });
        assert!(w.get(3, 10).is_none(), "lowest seq evicted at the bound");
        assert!(w.get(3, 11).is_some());
        assert!(w.get(3, 12).is_some());
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn replay_outcomes_match_the_active_reply_shapes() {
        let t = Txn::Create { path: "/f".into(), replication: 3 };
        match replay_outcome(|p| Some(info(p)), &t) {
            RetryOutcome::Info(i) => assert_eq!(i.path, "/f"),
            other => panic!("create must reconstruct Info, got {other:?}"),
        }
        let t = Txn::AddBlock { path: "/f".into(), block_id: 77, len: 1 };
        assert_eq!(replay_outcome(|_| None, &t), RetryOutcome::Block(77));
        let t = Txn::Mkdir { path: "/d".into() };
        assert_eq!(replay_outcome(|_| None, &t), RetryOutcome::Done);
        let t = Txn::Rename { src: "/a".into(), dst: "/b".into() };
        assert_eq!(replay_outcome(|_| None, &t), RetryOutcome::Done);
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = sample();
        let mut b = sample();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.record(2, 2, RetryEntry { outcome: RetryOutcome::Done, token: None });
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
