//! The proposer: drives one instance to a decision.

use std::collections::BTreeSet;

use crate::acceptor::{AcceptReply, PrepareReply};
use crate::ballot::Ballot;
use crate::messages::Value;

/// What the caller should do next after feeding a reply in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProposerEvent {
    /// Keep waiting for more replies.
    Pending,
    /// Phase 1 reached quorum: broadcast `Accept { ballot, value }`.
    SendAccepts { ballot: Ballot, value: Value },
    /// Phase 2 reached quorum: `value` is chosen.
    Chosen { ballot: Ballot, value: Value },
    /// Preempted by a higher ballot; retry with a ballot above `above`.
    Preempted { above: Ballot },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Preparing,
    Accepting,
    Done,
}

/// Single-instance proposer state machine.
///
/// The caller owns message delivery: it broadcasts `Prepare`, feeds each
/// acceptor's reply through [`Proposer::on_prepare_reply`] /
/// [`Proposer::on_accept_reply`], and acts on the returned event.
#[derive(Debug, Clone)]
pub struct Proposer {
    me: u32,
    n_acceptors: usize,
    ballot: Ballot,
    /// The value we want if no acceptor has accepted anything yet.
    initial_value: Value,
    /// The value phase 2 will actually propose (possibly adopted).
    value: Value,
    /// Highest accepted ballot seen in promises (its value must be adopted).
    max_seen: Option<Ballot>,
    promised_from: BTreeSet<u32>,
    accepted_from: BTreeSet<u32>,
    phase: Phase,
}

impl Proposer {
    /// Start an instance at `ballot` proposing `value`.
    pub fn new(me: u32, n_acceptors: usize, ballot: Ballot, value: Value) -> Self {
        assert!(n_acceptors >= 1);
        assert_eq!(ballot.proposer, me, "ballot must belong to the proposer");
        Proposer {
            me,
            n_acceptors,
            ballot,
            initial_value: value.clone(),
            value,
            max_seen: None,
            promised_from: BTreeSet::new(),
            accepted_from: BTreeSet::new(),
            phase: Phase::Preparing,
        }
    }

    pub fn ballot(&self) -> Ballot {
        self.ballot
    }

    fn quorum(&self) -> usize {
        self.n_acceptors / 2 + 1
    }

    /// Restart with a higher ballot after preemption, re-proposing the
    /// original value.
    pub fn retry_above(&self, above: Ballot) -> Proposer {
        let ballot = above.max(self.ballot).next_for(self.me);
        Proposer::new(self.me, self.n_acceptors, ballot, self.initial_value.clone())
    }

    /// Feed in acceptor `from`'s phase-1 reply.
    pub fn on_prepare_reply(&mut self, from: u32, reply: PrepareReply) -> ProposerEvent {
        if self.phase != Phase::Preparing {
            return ProposerEvent::Pending;
        }
        match reply {
            PrepareReply::Nack { promised } if promised > self.ballot => {
                self.phase = Phase::Done;
                ProposerEvent::Preempted { above: promised }
            }
            PrepareReply::Nack { .. } => ProposerEvent::Pending,
            PrepareReply::Promise { ballot, accepted } => {
                if ballot != self.ballot {
                    return ProposerEvent::Pending; // stale reply
                }
                if let Some((abal, aval)) = accepted {
                    if self.max_seen.is_none_or(|m| abal > m) {
                        self.max_seen = Some(abal);
                        self.value = aval;
                    }
                }
                self.promised_from.insert(from);
                if self.promised_from.len() >= self.quorum() {
                    self.phase = Phase::Accepting;
                    ProposerEvent::SendAccepts { ballot: self.ballot, value: self.value.clone() }
                } else {
                    ProposerEvent::Pending
                }
            }
        }
    }

    /// Feed in acceptor `from`'s phase-2 reply.
    pub fn on_accept_reply(&mut self, from: u32, reply: AcceptReply) -> ProposerEvent {
        if self.phase != Phase::Accepting {
            return ProposerEvent::Pending;
        }
        match reply {
            AcceptReply::Nack { promised } if promised > self.ballot => {
                self.phase = Phase::Done;
                ProposerEvent::Preempted { above: promised }
            }
            AcceptReply::Nack { .. } => ProposerEvent::Pending,
            AcceptReply::Accepted { ballot } => {
                if ballot != self.ballot {
                    return ProposerEvent::Pending; // stale reply
                }
                self.accepted_from.insert(from);
                if self.accepted_from.len() >= self.quorum() {
                    self.phase = Phase::Done;
                    ProposerEvent::Chosen { ballot: self.ballot, value: self.value.clone() }
                } else {
                    ProposerEvent::Pending
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acceptor::Acceptor;
    use bytes::Bytes;

    fn v(s: &str) -> Value {
        Bytes::copy_from_slice(s.as_bytes())
    }

    /// Drive a full round against real acceptors; returns the chosen value.
    fn run_round(acceptors: &mut [Acceptor], me: u32, round: u64, val: &str) -> Option<Value> {
        let ballot = Ballot::new(round, me);
        let mut p = Proposer::new(me, acceptors.len(), ballot, v(val));
        let mut accept_req = None;
        for (i, a) in acceptors.iter_mut().enumerate() {
            let reply = a.on_prepare(ballot);
            match p.on_prepare_reply(i as u32, reply) {
                ProposerEvent::SendAccepts { ballot, value } => {
                    accept_req = Some((ballot, value));
                    break;
                }
                ProposerEvent::Preempted { .. } => return None,
                _ => {}
            }
        }
        let (ballot, value) = accept_req?;
        for (i, a) in acceptors.iter_mut().enumerate() {
            let reply = a.on_accept(ballot, value.clone());
            match p.on_accept_reply(i as u32, reply) {
                ProposerEvent::Chosen { value, .. } => return Some(value),
                ProposerEvent::Preempted { .. } => return None,
                _ => {}
            }
        }
        None
    }

    #[test]
    fn uncontended_round_chooses_own_value() {
        let mut acceptors = vec![Acceptor::new(); 3];
        let chosen = run_round(&mut acceptors, 1, 1, "alpha").unwrap();
        assert_eq!(chosen, v("alpha"));
    }

    #[test]
    fn later_proposer_adopts_chosen_value() {
        // Safety: once "alpha" is chosen, any later round must choose
        // "alpha" again, never "beta".
        let mut acceptors = vec![Acceptor::new(); 5];
        let first = run_round(&mut acceptors, 1, 1, "alpha").unwrap();
        assert_eq!(first, v("alpha"));
        let second = run_round(&mut acceptors, 2, 2, "beta").unwrap();
        assert_eq!(second, v("alpha"), "previously chosen value must win");
    }

    #[test]
    fn preemption_reported() {
        let mut acceptors = vec![Acceptor::new(); 3];
        // Acceptors promise a high ballot first.
        for a in acceptors.iter_mut() {
            a.on_prepare(Ballot::new(10, 9));
        }
        assert!(run_round(&mut acceptors, 1, 1, "late").is_none());
    }

    #[test]
    fn retry_above_picks_strictly_higher_ballot() {
        let p = Proposer::new(1, 3, Ballot::new(1, 1), v("x"));
        let p2 = p.retry_above(Ballot::new(7, 4));
        assert!(p2.ballot() > Ballot::new(7, 4));
        assert_eq!(p2.ballot().proposer, 1);
    }

    #[test]
    fn minority_promises_do_not_advance() {
        let mut p = Proposer::new(0, 5, Ballot::new(1, 0), v("x"));
        let mut a = Acceptor::new();
        let r = a.on_prepare(Ballot::new(1, 0));
        assert_eq!(p.on_prepare_reply(0, r), ProposerEvent::Pending);
        // Duplicate reply from the same acceptor must not double-count.
        let mut a2 = Acceptor::new();
        let r2 = a2.on_prepare(Ballot::new(1, 0));
        assert_eq!(p.on_prepare_reply(0, r2), ProposerEvent::Pending);
    }

    #[test]
    fn adopts_highest_ballot_value_among_promises() {
        let mut p = Proposer::new(3, 3, Ballot::new(9, 3), v("mine"));
        let old = PrepareReply::Promise {
            ballot: Ballot::new(9, 3),
            accepted: Some((Ballot::new(2, 0), v("old"))),
        };
        let newer = PrepareReply::Promise {
            ballot: Ballot::new(9, 3),
            accepted: Some((Ballot::new(5, 1), v("newer"))),
        };
        assert_eq!(p.on_prepare_reply(0, old), ProposerEvent::Pending);
        match p.on_prepare_reply(1, newer) {
            ProposerEvent::SendAccepts { value, .. } => assert_eq!(value, v("newer")),
            other => panic!("unexpected {other:?}"),
        }
    }
}
