//! Client-side helper embedded by every coordinated node.
//!
//! Owns the session lifecycle (register + periodic heartbeats) and request
//! numbering; the owner node feeds timers and messages through and receives
//! classified [`Incoming`] values back.

use mams_sim::{Ctx, Duration, Message, NodeId};

use crate::proto::{CoordEvent, CoordReq, CoordResp, KeyOp, ReqId};

/// Timer token reserved for the coordination heartbeat. Owner nodes must
/// not use tokens in the `0xC001_...` range.
pub const COORD_HB_TOKEN: u64 = 0xC001_0000_0000_0001;

/// A classified inbound coordination message.
#[derive(Debug, Clone)]
pub enum Incoming {
    Resp(CoordResp),
    Event(CoordEvent),
}

/// Session + request bookkeeping against one coordination server.
#[derive(Debug)]
pub struct CoordClient {
    coord: NodeId,
    heartbeat: Duration,
    next_req: ReqId,
}

impl CoordClient {
    /// `heartbeat` defaults in the paper's setup to 2 s.
    pub fn new(coord: NodeId, heartbeat: Duration) -> Self {
        CoordClient { coord, heartbeat, next_req: 0 }
    }

    /// The coordination server's node id.
    pub fn coord(&self) -> NodeId {
        self.coord
    }

    /// Open the session and arm the heartbeat timer. Call from `on_start`.
    pub fn start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.send(self.coord, CoordReq::Register);
        ctx.set_timer(self.heartbeat, COORD_HB_TOKEN);
    }

    /// Feed a timer through; returns `true` if it was the heartbeat timer
    /// (owner should not interpret the token further).
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) -> bool {
        if token == COORD_HB_TOKEN {
            ctx.send(self.coord, CoordReq::Heartbeat);
            ctx.set_timer(self.heartbeat, COORD_HB_TOKEN);
            true
        } else {
            false
        }
    }

    /// Classify an inbound message; returns the original message back when
    /// it is not coordination traffic.
    pub fn classify(msg: Message) -> Result<Incoming, Message> {
        match msg.downcast::<CoordResp>() {
            Ok(r) => Ok(Incoming::Resp(r)),
            Err(m) => match m.downcast::<CoordEvent>() {
                Ok(e) => Ok(Incoming::Event(e)),
                Err(m) => Err(m),
            },
        }
    }

    fn req(&mut self) -> ReqId {
        self.next_req += 1;
        self.next_req
    }

    /// Re-open the session (after `CoordResp::NoSession` or
    /// `CoordEvent::SessionExpired`).
    pub fn reregister(&mut self, ctx: &mut Ctx<'_>) {
        ctx.send(self.coord, CoordReq::Register);
    }

    /// Atomically apply key operations.
    pub fn multi(&mut self, ctx: &mut Ctx<'_>, ops: Vec<KeyOp>) -> ReqId {
        let req = self.req();
        ctx.send(self.coord, CoordReq::Multi { ops, req });
        req
    }

    /// Convenience: set one key.
    pub fn set(
        &mut self,
        ctx: &mut Ctx<'_>,
        key: impl Into<String>,
        value: impl Into<String>,
        ephemeral: bool,
    ) -> ReqId {
        self.multi(ctx, vec![KeyOp::Set { key: key.into(), value: value.into(), ephemeral }])
    }

    pub fn get(&mut self, ctx: &mut Ctx<'_>, key: impl Into<String>) -> ReqId {
        let req = self.req();
        ctx.send(self.coord, CoordReq::Get { key: key.into(), req });
        req
    }

    pub fn list(&mut self, ctx: &mut Ctx<'_>, prefix: impl Into<String>) -> ReqId {
        let req = self.req();
        ctx.send(self.coord, CoordReq::List { prefix: prefix.into(), req });
        req
    }

    pub fn watch(&mut self, ctx: &mut Ctx<'_>, prefix: impl Into<String>) -> ReqId {
        let req = self.req();
        ctx.send(self.coord, CoordReq::Watch { prefix: prefix.into(), req });
        req
    }

    pub fn acquire_lock(&mut self, ctx: &mut Ctx<'_>, path: impl Into<String>) -> ReqId {
        let req = self.req();
        ctx.send(self.coord, CoordReq::AcquireLock { path: path.into(), req });
        req
    }

    /// `epoch` must be the grant epoch being released; stale duplicates of
    /// this request are ignored by the server (see [`CoordReq::ReleaseLock`]).
    pub fn release_lock(
        &mut self,
        ctx: &mut Ctx<'_>,
        path: impl Into<String>,
        epoch: u64,
    ) -> ReqId {
        let req = self.req();
        ctx.send(self.coord, CoordReq::ReleaseLock { path: path.into(), epoch, req });
        req
    }

    /// Deliberately kill our own session (Test A's "active loses the
    /// lock").
    pub fn expire_self(&mut self, ctx: &mut Ctx<'_>) {
        ctx.send(self.coord, CoordReq::Expire);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mams_sim::Message;

    #[test]
    fn classify_separates_coord_traffic() {
        let resp = Message::new(CoordResp::Registered);
        assert!(matches!(CoordClient::classify(resp), Ok(Incoming::Resp(CoordResp::Registered))));
        let ev = Message::new(CoordEvent::SessionExpired);
        assert!(matches!(
            CoordClient::classify(ev),
            Ok(Incoming::Event(CoordEvent::SessionExpired))
        ));
        let other = Message::new(42u32);
        let back = CoordClient::classify(other).unwrap_err();
        assert!(back.is::<u32>());
    }

    #[test]
    fn request_ids_are_unique() {
        let mut c = CoordClient::new(0, Duration::from_secs(2));
        let a = c.req();
        let b = c.req();
        assert_ne!(a, b);
    }
}
