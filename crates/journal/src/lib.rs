//! # mams-journal — edit-log transactions, batches, and replay
//!
//! The MAMS active serializes every namespace mutation into a journal. Log
//! records are grouped into batches described by the pair `⟨sn, txid⟩`
//! (Section III-A of the paper): `sn` is a monotonically increasing serial
//! number assigned by the active when it writes journals, and `txid` numbers
//! individual transactions. Standbys replay batches to stay hot; juniors
//! compare `sn` values to discover how far behind they are; the failover
//! protocol suppresses duplicate batches by comparing `sn` (step 4 of the
//! active-standby switch).
//!
//! This crate owns:
//! * [`Txn`] — the namespace operation vocabulary,
//! * [`JournalBatch`] — a `⟨sn, txid⟩`-described group of records,
//! * [`encode`] — a compact binary wire/disk format with checksums,
//! * [`JournalLog`] — an in-memory segment enforcing sn contiguity and
//!   idempotent appends,
//! * [`SharedBatch`] — a reference-counted batch handle with an encode-once
//!   wire form, so fan-out to standbys and the SSP never deep-copies,
//! * [`ReplayCursor`] — duplicate-suppressing batch application.

pub mod cursor;
pub mod encode;
pub mod hash;
pub mod log;
pub mod shared;
pub mod txn;

pub use cursor::{Apply, ReplayCursor, ReplayOutcome};
pub use encode::{decode_batch, encode_batch, encode_batch_v1, EncodeError};
pub use hash::{fnv1a64, peek_varint, Fnv1a64, HashingBuf, Varint};
pub use log::{AppendOutcome, JournalError, JournalLog};
pub use shared::SharedBatch;
pub use txn::{AckRecord, JournalBatch, Sn, Txn, TxnId};
