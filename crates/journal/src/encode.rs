//! Binary journal encoding.
//!
//! The SSP stores journal segments as sequential shared files; this module
//! defines the record format: a fixed header (`magic`, `version`, `sn`,
//! `first_txid`, record count), length-prefixed records, and a trailing
//! FNV-1a-64 checksum so a torn or corrupted write is detected on replay.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::txn::{JournalBatch, Txn};

/// Format magic: "MAMSJRNL" truncated to 4 bytes.
pub const MAGIC: u32 = 0x4d4a_524e;
/// Current format version.
pub const VERSION: u16 = 1;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    BadMagic(u32),
    BadVersion(u16),
    Truncated,
    BadChecksum { stored: u64, computed: u64 },
    BadTag(u8),
    BadUtf8,
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::BadMagic(m) => write!(f, "bad journal magic {m:#x}"),
            EncodeError::BadVersion(v) => write!(f, "unsupported journal version {v}"),
            EncodeError::Truncated => write!(f, "truncated journal batch"),
            EncodeError::BadChecksum { stored, computed } => {
                write!(f, "journal checksum mismatch: stored {stored:#x}, computed {computed:#x}")
            }
            EncodeError::BadTag(t) => write!(f, "unknown transaction tag {t}"),
            EncodeError::BadUtf8 => write!(f, "non-UTF-8 path in journal record"),
        }
    }
}

impl std::error::Error for EncodeError {}

fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, EncodeError> {
    if buf.remaining() < 2 {
        return Err(EncodeError::Truncated);
    }
    let len = buf.get_u16() as usize;
    if buf.remaining() < len {
        return Err(EncodeError::Truncated);
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| EncodeError::BadUtf8)
}

fn put_txn(buf: &mut BytesMut, t: &Txn) {
    buf.put_u8(t.tag());
    match t {
        Txn::Create { path, replication } => {
            put_str(buf, path);
            buf.put_u8(*replication);
        }
        Txn::Mkdir { path } => put_str(buf, path),
        Txn::Delete { path, recursive } => {
            put_str(buf, path);
            buf.put_u8(*recursive as u8);
        }
        Txn::Rename { src, dst } => {
            put_str(buf, src);
            put_str(buf, dst);
        }
        Txn::AddBlock { path, block_id, len } => {
            put_str(buf, path);
            buf.put_u64(*block_id);
            buf.put_u32(*len);
        }
        Txn::CloseFile { path } => put_str(buf, path),
        Txn::SetPerm { path, perm } => {
            put_str(buf, path);
            buf.put_u16(*perm);
        }
    }
}

fn get_txn(buf: &mut Bytes) -> Result<Txn, EncodeError> {
    if buf.remaining() < 1 {
        return Err(EncodeError::Truncated);
    }
    let tag = buf.get_u8();
    Ok(match tag {
        1 => {
            let path = get_str(buf)?;
            if buf.remaining() < 1 {
                return Err(EncodeError::Truncated);
            }
            Txn::Create { path, replication: buf.get_u8() }
        }
        2 => Txn::Mkdir { path: get_str(buf)? },
        3 => {
            let path = get_str(buf)?;
            if buf.remaining() < 1 {
                return Err(EncodeError::Truncated);
            }
            Txn::Delete { path, recursive: buf.get_u8() != 0 }
        }
        4 => Txn::Rename { src: get_str(buf)?, dst: get_str(buf)? },
        5 => {
            let path = get_str(buf)?;
            if buf.remaining() < 12 {
                return Err(EncodeError::Truncated);
            }
            Txn::AddBlock { path, block_id: buf.get_u64(), len: buf.get_u32() }
        }
        6 => Txn::CloseFile { path: get_str(buf)? },
        7 => {
            let path = get_str(buf)?;
            if buf.remaining() < 2 {
                return Err(EncodeError::Truncated);
            }
            Txn::SetPerm { path, perm: buf.get_u16() }
        }
        t => return Err(EncodeError::BadTag(t)),
    })
}

/// Encode a batch into its on-disk/wire bytes.
pub fn encode_batch(batch: &JournalBatch) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + batch.records.len() * 48);
    buf.put_u32(MAGIC);
    buf.put_u16(VERSION);
    buf.put_u64(batch.sn);
    buf.put_u64(batch.first_txid);
    buf.put_u32(batch.records.len() as u32);
    for t in &batch.records {
        put_txn(&mut buf, t);
    }
    let sum = fnv1a64(&buf);
    buf.put_u64(sum);
    buf.freeze()
}

/// Decode a batch, verifying magic, version and checksum.
pub fn decode_batch(data: Bytes) -> Result<JournalBatch, EncodeError> {
    if data.remaining() < 8 {
        return Err(EncodeError::Truncated);
    }
    let body_len = data.remaining() - 8;
    let body = data.slice(..body_len);
    let stored = {
        let mut tail = data.slice(body_len..);
        tail.get_u64()
    };
    let computed = fnv1a64(&body);
    if stored != computed {
        return Err(EncodeError::BadChecksum { stored, computed });
    }
    let mut buf = body;
    if buf.remaining() < 4 + 2 + 8 + 8 + 4 {
        return Err(EncodeError::Truncated);
    }
    let magic = buf.get_u32();
    if magic != MAGIC {
        return Err(EncodeError::BadMagic(magic));
    }
    let version = buf.get_u16();
    if version != VERSION {
        return Err(EncodeError::BadVersion(version));
    }
    let sn = buf.get_u64();
    let first_txid = buf.get_u64();
    let n = buf.get_u32() as usize;
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        records.push(get_txn(&mut buf)?);
    }
    Ok(JournalBatch { sn, first_txid, records })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> JournalBatch {
        JournalBatch::new(
            3,
            40,
            vec![
                Txn::Create { path: "/dir/file-α".into(), replication: 3 },
                Txn::Mkdir { path: "/dir/sub".into() },
                Txn::Delete { path: "/old".into(), recursive: true },
                Txn::Rename { src: "/a".into(), dst: "/b".into() },
                Txn::AddBlock { path: "/dir/file-α".into(), block_id: 99, len: 4096 },
                Txn::CloseFile { path: "/dir/file-α".into() },
                Txn::SetPerm { path: "/dir".into(), perm: 0o750 },
            ],
        )
    }

    #[test]
    fn round_trip_all_variants() {
        let b = sample_batch();
        let enc = encode_batch(&b);
        let dec = decode_batch(enc).unwrap();
        assert_eq!(dec, b);
    }

    #[test]
    fn corruption_detected() {
        let b = sample_batch();
        let enc = encode_batch(&b);
        for i in [0usize, 6, enc.len() / 2, enc.len() - 1] {
            let mut bad = enc.to_vec();
            bad[i] ^= 0xff;
            let err = decode_batch(Bytes::from(bad)).unwrap_err();
            assert!(
                matches!(
                    err,
                    EncodeError::BadChecksum { .. }
                        | EncodeError::BadMagic(_)
                        | EncodeError::BadVersion(_)
                ),
                "unexpected error at byte {i}: {err:?}"
            );
        }
    }

    #[test]
    fn truncation_detected() {
        let enc = encode_batch(&sample_batch());
        for cut in [0usize, 4, 7, 20, enc.len() - 9] {
            let err = decode_batch(enc.slice(..cut)).unwrap_err();
            assert!(
                matches!(err, EncodeError::Truncated | EncodeError::BadChecksum { .. }),
                "cut={cut}: {err:?}"
            );
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = EncodeError::BadChecksum { stored: 1, computed: 2 };
        assert!(format!("{e}").contains("checksum"));
        assert!(format!("{}", EncodeError::BadTag(9)).contains("tag 9"));
    }
}
