//! Deterministic randomness for the simulator.
//!
//! Every stochastic choice in an experiment — network jitter, election bids
//! (Algorithm 1's "each standby generates a random number"), workload key
//! selection — draws from one seeded generator owned by the [`crate::Sim`],
//! so a `(seed, schedule)` pair fully determines a run.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded, splittable random source.
///
/// `split` derives an independent child stream; the cluster builder hands one
/// child to each workload client so that adding a client does not perturb the
/// draws seen by the others.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        DetRng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Derive an independent child generator.
    pub fn split(&mut self) -> DetRng {
        DetRng::seed_from_u64(self.inner.next_u64() ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "DetRng::below(0)");
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "DetRng::range empty");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen_range(0.0..1.0)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Pick a uniformly random element index for a slice length. Panics on
    /// empty slices.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "DetRng::index on empty slice");
        self.inner.gen_range(0..len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn split_is_deterministic_and_independent() {
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        let mut ca = a.split();
        let mut cb = b.split();
        assert_eq!(ca.next_u64(), cb.next_u64());
        // Parent stream continues identically after split.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounds_respected() {
        let mut r = DetRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seed_from_u64(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "p=0.3 hit rate {hits}");
    }
}
