//! # mams-core — the MAMS (multiple actives multiple standbys) policy
//!
//! The paper's contribution: replica groups of metadata servers with one
//! **active**, several hot **standbys**, and possibly out-of-sync
//! **juniors**, coordinated through a global view and two distributed
//! protocols (Section III):
//!
//! * the **failover protocol** — event-driven failure detection through the
//!   global view, Algorithm 1 active election (standbys race for the
//!   distributed lock with random bids; with no standbys left, the junior
//!   with the maximum journal `sn` takes over), and the six-step
//!   active-standby switch with `sn`-based duplicate suppression and
//!   epoch-fenced SSP access;
//! * the **renewing protocol** — background recovery that upgrades a junior
//!   to a standby by loading the namespace image from the SSP (resumable,
//!   checkpointed) and replaying the journal tail, finishing with a final
//!   synchronization handshake once the `sn` gap is small.
//!
//! The central type is [`MdsServer`]: one replica-group member. It embeds
//! the namespace tree, journal log and replay cursor, block map, the
//! coordination client, and the role state machine, and runs on any
//! `mams-sim` runtime.

pub mod commit;
pub mod config;
pub mod ingress;
pub mod proto;
pub mod retry;
pub mod server;
pub mod view;

mod active;
mod failover;
mod renewing;

pub use commit::GroupCommitPolicy;
pub use config::{InitialRole, MdsConfig, MdsTiming};
pub use ingress::{CpuModel, Ingress, IngressItem};
pub use proto::{FsOp, GroupMsg, MdsReq, MdsResp, OpOutput};
pub use retry::RetryCache;
pub use server::{MdsServer, Role};
pub use view::keys;
