//! Randomized parity between [`ShardedNamespace`] and the legacy
//! [`NamespaceTree`].
//!
//! The sharded namespace must be *observationally identical* to the legacy
//! tree: same results (including errors) for every operation, same
//! fingerprint after any operation sequence, and snapshot reads pinned
//! mid-sequence must match a quiesced replica that stopped at the pin
//! point.
//!
//! These are seeded randomized tests, not `proptest` suites: the vendored
//! `proptest` crate is an intentionally empty stand-in (see
//! `vendor/proptest`), so property coverage here comes from the vendored
//! `rand` with fixed seeds — deterministic, shrink-free, CI-friendly.
//! `PARITY_CASES` scales the number of cases per test (nightly runs more).

use mams_namespace::{NamespaceTree, NsError, ShardedNamespace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Cases per test; override with `PARITY_CASES` (nightly runs elevated).
fn cases() -> u64 {
    std::env::var("PARITY_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(24)
}

const OPS_PER_CASE: usize = 400;

const TOPS: [&str; 3] = ["a", "b", "c"];
const SUBS: [&str; 3] = ["x", "y", "z"];
const LEAVES: [&str; 8] = ["f0", "f1", "f2", "f3", "g0", "g1", "g2", "g3"];

/// A directory path from the small contended universe ("/" included).
fn rand_dir(rng: &mut SmallRng) -> String {
    match rng.gen_range(0..3u32) {
        0 => "/".to_string(),
        1 => format!("/{}", TOPS[rng.gen_range(0..TOPS.len())]),
        _ => format!(
            "/{}/{}",
            TOPS[rng.gen_range(0..TOPS.len())],
            SUBS[rng.gen_range(0..SUBS.len())]
        ),
    }
}

/// A leaf path under a random universe directory.
fn rand_path(rng: &mut SmallRng) -> String {
    let d = rand_dir(rng);
    let leaf = LEAVES[rng.gen_range(0..LEAVES.len())];
    if d == "/" {
        format!("/{leaf}")
    } else {
        format!("{d}/{leaf}")
    }
}

/// One randomly drawn namespace operation.
#[derive(Debug, Clone)]
enum Op {
    Create(String, u8),
    Mkdir(String),
    MkdirP(String),
    Delete(String, bool),
    Rename(String, String),
    AddBlock(String, u64),
    CloseFile(String),
    SetPerm(String, u16),
}

fn rand_op(rng: &mut SmallRng) -> Op {
    match rng.gen_range(0..16u32) {
        // Creation-heavy so the universe fills up and later ops collide.
        0..=4 => Op::Create(rand_path(rng), rng.gen_range(1..4u32) as u8),
        5..=7 => Op::Mkdir(rand_dir(rng)),
        8 => Op::MkdirP(rand_dir(rng)),
        9..=10 => Op::Delete(rand_path(rng), rng.gen_bool(0.3)),
        11 => Op::Delete(rand_dir(rng), rng.gen_bool(0.5)),
        12 => Op::Rename(rand_path(rng), rand_path(rng)),
        13 => Op::AddBlock(rand_path(rng), rng.gen_range(0..1u64 << 32)),
        14 => Op::CloseFile(rand_path(rng)),
        _ => Op::SetPerm(rand_path(rng), rng.gen_range(0..0o1000u32) as u16),
    }
}

impl Op {
    fn apply_legacy(&self, t: &mut NamespaceTree) -> Result<(), NsError> {
        match self {
            Op::Create(p, r) => t.create(p, *r).map(drop),
            Op::Mkdir(p) => t.mkdir(p),
            Op::MkdirP(p) => t.mkdir_p(p),
            Op::Delete(p, rec) => t.delete(p, *rec).map(drop),
            Op::Rename(s, d) => t.rename(s, d),
            Op::AddBlock(p, b) => t.add_block(p, *b),
            Op::CloseFile(p) => t.close_file(p),
            Op::SetPerm(p, m) => t.set_perm(p, *m),
        }
    }

    fn apply_sharded(&self, n: &ShardedNamespace) -> Result<(), NsError> {
        match self {
            Op::Create(p, r) => n.create(p, *r).map(drop),
            Op::Mkdir(p) => n.mkdir(p),
            Op::MkdirP(p) => n.mkdir_p(p),
            Op::Delete(p, rec) => n.delete(p, *rec).map(drop),
            Op::Rename(s, d) => n.rename(s, d),
            Op::AddBlock(p, b) => n.add_block(p, *b),
            Op::CloseFile(p) => n.close_file(p),
            Op::SetPerm(p, m) => n.set_perm(p, *m),
        }
    }
}

/// Every path the universe can name (for read sweeps).
fn universe() -> Vec<String> {
    let mut v = vec!["/".to_string()];
    for t in TOPS {
        v.push(format!("/{t}"));
        for s in SUBS {
            v.push(format!("/{t}/{s}"));
        }
    }
    let dirs = v.clone();
    for d in &dirs {
        for l in LEAVES {
            if d == "/" {
                v.push(format!("/{l}"));
            } else {
                v.push(format!("{d}/{l}"));
            }
        }
    }
    v
}

/// Sharded results — mutation outcomes, reads, fingerprint, counters —
/// must equal the legacy tree's after every random op.
#[test]
fn random_ops_keep_sharded_and_legacy_identical() {
    for case in 0..cases() {
        // Odd shard counts and 1 exercise the modulo layout edge cases.
        let shards = [1usize, 2, 4, 16][case as usize % 4];
        let mut rng = SmallRng::seed_from_u64(0x5AD_0001 ^ (case << 8));
        let mut legacy = NamespaceTree::new();
        let sharded = ShardedNamespace::with_shards(shards);
        for step in 0..OPS_PER_CASE {
            let op = rand_op(&mut rng);
            let a = op.apply_legacy(&mut legacy);
            let b = op.apply_sharded(&sharded);
            assert_eq!(a, b, "case {case} step {step}: {op:?} diverged");
        }
        assert_eq!(legacy.fingerprint(), sharded.fingerprint(), "case {case}: fingerprint");
        assert_eq!(legacy.num_files(), sharded.num_files(), "case {case}: file count");
        assert_eq!(legacy.num_dirs(), sharded.num_dirs(), "case {case}: dir count");
        for p in universe() {
            assert_eq!(
                legacy.getfileinfo(&p),
                sharded.getfileinfo(&p),
                "case {case}: getfileinfo({p})"
            );
            assert_eq!(legacy.list(&p), sharded.list(&p), "case {case}: list({p})");
            assert_eq!(
                legacy.resolve_path(&p).is_some(),
                sharded.resolve_path(&p).is_some(),
                "case {case}: exists({p})"
            );
        }
    }
}

/// A view pinned mid-sequence must read exactly what a replica that
/// quiesced at the pin point reads — later mutations are invisible.
#[test]
fn snapshot_reads_match_a_quiesced_replica() {
    for case in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(0x5AD_0002 ^ (case << 8));
        let sharded = ShardedNamespace::with_shards(4);
        let mut quiesced = NamespaceTree::new();
        let prefix = rng.gen_range(40..OPS_PER_CASE);
        for _ in 0..prefix {
            let op = rand_op(&mut rng);
            let _ = op.apply_legacy(&mut quiesced);
            let _ = op.apply_sharded(&sharded);
        }
        let view = sharded.pin();
        // Keep mutating underneath the pinned view.
        for _ in 0..rng.gen_range(40..200) {
            let _ = rand_op(&mut rng).apply_sharded(&sharded);
        }
        assert_eq!(
            view.fingerprint(),
            quiesced.fingerprint(),
            "case {case}: pinned fingerprint must be the quiesced state's"
        );
        for p in universe() {
            assert_eq!(
                quiesced.getfileinfo(&p),
                view.getfileinfo(&p),
                "case {case}: snapshot getfileinfo({p})"
            );
            assert_eq!(quiesced.list(&p), view.list(&p), "case {case}: snapshot list({p})");
            assert_eq!(quiesced.exists(&p), view.exists(&p), "case {case}: snapshot exists({p})");
        }
        drop(view);
        // And the live namespace still matches a full replay elsewhere:
        // fingerprints only need to agree *after* the view is released.
        assert_eq!(sharded.divergences(), 0, "case {case}");
    }
}
