//! The acceptor: the only state that matters for Paxos safety.

use crate::ballot::Ballot;
use crate::messages::Value;

/// Reply to a phase-1 `Prepare`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrepareReply {
    /// Promise not to accept anything below `ballot`; reveals the
    /// highest-ballot value accepted so far.
    Promise { ballot: Ballot, accepted: Option<(Ballot, Value)> },
    /// Already promised `promised` (> the offered ballot).
    Nack { promised: Ballot },
}

/// Reply to a phase-2 `Accept`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcceptReply {
    Accepted { ballot: Ballot },
    Nack { promised: Ballot },
}

/// Single-instance acceptor state machine.
#[derive(Debug, Clone, Default)]
pub struct Acceptor {
    promised: Option<Ballot>,
    accepted: Option<(Ballot, Value)>,
}

impl Acceptor {
    pub fn new() -> Self {
        Acceptor::default()
    }

    /// Phase 1: handle `Prepare(ballot)`.
    pub fn on_prepare(&mut self, ballot: Ballot) -> PrepareReply {
        match self.promised {
            Some(p) if p > ballot => PrepareReply::Nack { promised: p },
            _ => {
                self.promised = Some(ballot);
                PrepareReply::Promise { ballot, accepted: self.accepted.clone() }
            }
        }
    }

    /// Phase 2: handle `Accept(ballot, value)`.
    pub fn on_accept(&mut self, ballot: Ballot, value: Value) -> AcceptReply {
        match self.promised {
            Some(p) if p > ballot => AcceptReply::Nack { promised: p },
            _ => {
                self.promised = Some(ballot);
                self.accepted = Some((ballot, value));
                AcceptReply::Accepted { ballot }
            }
        }
    }

    /// The highest-ballot value this acceptor has accepted.
    pub fn accepted(&self) -> Option<&(Ballot, Value)> {
        self.accepted.as_ref()
    }

    /// The ballot this acceptor has promised (if any).
    pub fn promised(&self) -> Option<Ballot> {
        self.promised
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn b(round: u64, p: u32) -> Ballot {
        Ballot::new(round, p)
    }
    fn v(s: &str) -> Value {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn promises_are_monotone() {
        let mut a = Acceptor::new();
        assert!(matches!(a.on_prepare(b(1, 0)), PrepareReply::Promise { .. }));
        assert!(matches!(a.on_prepare(b(2, 0)), PrepareReply::Promise { .. }));
        // Lower ballot after a higher promise: rejected.
        assert_eq!(a.on_prepare(b(1, 5)), PrepareReply::Nack { promised: b(2, 0) });
    }

    #[test]
    fn accept_below_promise_rejected() {
        let mut a = Acceptor::new();
        a.on_prepare(b(3, 0));
        assert_eq!(a.on_accept(b(2, 9), v("x")), AcceptReply::Nack { promised: b(3, 0) });
        assert!(a.accepted().is_none());
    }

    #[test]
    fn accept_at_or_above_promise_succeeds_and_is_revealed() {
        let mut a = Acceptor::new();
        a.on_prepare(b(1, 0));
        assert_eq!(a.on_accept(b(1, 0), v("x")), AcceptReply::Accepted { ballot: b(1, 0) });
        match a.on_prepare(b(5, 1)) {
            PrepareReply::Promise { accepted: Some((bal, val)), .. } => {
                assert_eq!(bal, b(1, 0));
                assert_eq!(val, v("x"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn accept_without_prior_prepare_is_legal() {
        // An acceptor that never promised can accept directly (it implicitly
        // promises the accept ballot).
        let mut a = Acceptor::new();
        assert!(matches!(a.on_accept(b(1, 0), v("y")), AcceptReply::Accepted { .. }));
        assert_eq!(a.promised(), Some(b(1, 0)));
    }

    #[test]
    fn higher_accept_replaces_value() {
        let mut a = Acceptor::new();
        a.on_accept(b(1, 0), v("old"));
        a.on_accept(b(2, 0), v("new"));
        assert_eq!(a.accepted().unwrap().1, v("new"));
        // But a lower accept cannot roll it back.
        assert!(matches!(a.on_accept(b(1, 5), v("evil")), AcceptReply::Nack { .. }));
        assert_eq!(a.accepted().unwrap().1, v("new"));
    }
}
