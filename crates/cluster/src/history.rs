//! Per-client operation histories for linearizability checking.
//!
//! Each [`FsClient`](crate::client::FsClient) built with a [`Recorder`]
//! logs every operation's invocation and completion (virtual-time stamped)
//! into a shared [`History`]. The chaos checker replays these records
//! against a sequential model of the metadata service.
//!
//! Clients are closed-loop (one outstanding operation), so each client's
//! records form a sequential sub-history; an operation still outstanding
//! when the run ends keeps `completed_us: None` — the checker treats such
//! mutations as "may or may not have executed".

use std::sync::Arc;

use mams_core::{FsOp, OpOutput};
use parking_lot::Mutex;

/// One invocation (and, usually, its completion) as the client saw it.
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// Recorder-assigned client id (dense, not the sim node id).
    pub client: u32,
    pub op: FsOp,
    pub invoked_us: u64,
    /// `None` = still outstanding when the run ended.
    pub completed_us: Option<u64>,
    /// What the client accepted (`true` includes reconciled retries).
    pub ok: Option<bool>,
    /// Successful output, when the server replied `Ok`.
    pub output: Option<OpOutput>,
    /// Raw error string, when the server replied `Err` — kept even for
    /// reconciled retries so the checker sees the real response.
    pub error: Option<String>,
    /// Send attempts made (1 = no retry; >1 means the op may have executed
    /// more than once server-side across a failover).
    pub attempts: u32,
    /// The client turned an `Err` reply into a success because it matched
    /// its own earlier half-acked execution (retry reconciliation).
    pub reconciled: bool,
    /// The private-directory setup mkdir (idempotent by construction).
    pub is_setup: bool,
    /// Completed through the speculative-ack path (`MdsResp::ReplySpec`):
    /// a mutation's ack predates durability and may be lost on failover.
    pub spec: bool,
    /// Ordering token from the speculative reply (the applied-txid
    /// watermark; for a mutation, the op's own txid). A token below the
    /// client's previous one marks a discarded speculative suffix.
    pub token: Option<u64>,
}

/// Shared, append-only history. Indexes returned by [`History::invoke`] are
/// stable — completions patch records in place.
#[derive(Debug, Default)]
pub struct History {
    records: Mutex<Vec<OpRecord>>,
}

impl History {
    pub fn new() -> Arc<History> {
        Arc::new(History::default())
    }

    /// Record an invocation; returns the index to complete later.
    pub fn invoke(&self, client: u32, op: FsOp, is_setup: bool, at_us: u64) -> usize {
        let mut r = self.records.lock();
        r.push(OpRecord {
            client,
            op,
            invoked_us: at_us,
            completed_us: None,
            ok: None,
            output: None,
            error: None,
            attempts: 0,
            reconciled: false,
            is_setup,
            spec: false,
            token: None,
        });
        r.len() - 1
    }

    /// Mark record `idx` as a speculative-mode completion carrying `token`.
    pub fn set_spec_token(&self, idx: usize, token: u64) {
        let mut r = self.records.lock();
        r[idx].spec = true;
        r[idx].token = Some(token);
    }

    /// Patch the completion side of record `idx`.
    pub fn complete(
        &self,
        idx: usize,
        at_us: u64,
        result: &Result<OpOutput, String>,
        ok: bool,
        attempts: u32,
    ) {
        let mut r = self.records.lock();
        let rec = &mut r[idx];
        rec.completed_us = Some(at_us);
        rec.ok = Some(ok);
        rec.attempts = attempts;
        match result {
            Ok(out) => rec.output = Some(out.clone()),
            Err(e) => {
                rec.error = Some(e.clone());
                rec.reconciled = ok;
            }
        }
    }

    /// Snapshot of all records (invocation order).
    pub fn records(&self) -> Vec<OpRecord> {
        self.records.lock().clone()
    }

    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }
}

/// A client's handle into a shared history.
#[derive(Debug, Clone)]
pub struct Recorder {
    pub client: u32,
    pub log: Arc<History>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invoke_then_complete_round_trip() {
        let h = History::new();
        let i = h.invoke(3, FsOp::Mkdir { path: "/x".into() }, false, 100);
        h.complete(i, 250, &Ok(OpOutput::Done), true, 1);
        let r = h.records();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].client, 3);
        assert_eq!(r[0].invoked_us, 100);
        assert_eq!(r[0].completed_us, Some(250));
        assert_eq!(r[0].ok, Some(true));
        assert!(!r[0].reconciled);
    }

    #[test]
    fn reconciled_errors_keep_the_raw_error() {
        let h = History::new();
        let i = h.invoke(0, FsOp::Delete { path: "/f".into(), recursive: false }, false, 1);
        h.complete(i, 9, &Err("/f: no such file or directory".into()), true, 3);
        let r = &h.records()[0];
        assert_eq!(r.ok, Some(true));
        assert!(r.reconciled);
        assert_eq!(r.attempts, 3);
        assert!(r.error.as_deref().unwrap().contains("no such file"));
    }

    #[test]
    fn outstanding_ops_stay_incomplete() {
        let h = History::new();
        h.invoke(1, FsOp::Create { path: "/f".into(), replication: 1 }, false, 5);
        let r = &h.records()[0];
        assert_eq!(r.completed_us, None);
        assert_eq!(r.ok, None);
    }
}
