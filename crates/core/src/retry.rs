//! Duplicate-request handling ("duplicated message handling in the MAMS
//! will avoid the problem of incorrect metadata operations", Section IV-C).
//!
//! Servers remember the last responses per client; an exactly-retried
//! request is answered from the cache, never re-executed. Clients may have
//! several operations outstanding (the MapReduce workers do), so the cache
//! holds a bounded window per client rather than a single entry. A retry
//! older than the window re-executes and fails benignly (e.g.
//! `AlreadyExists`), which the client libraries reconcile.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use mams_sim::NodeId;

use crate::proto::MdsResp;

/// Bounded per-client response cache. Responses are held behind `Arc` so a
/// cache hit (and the original send) is a reference-count bump, not a deep
/// clone of the reply payload — listings and file infos can be large.
#[derive(Debug, Default)]
pub struct RetryCache {
    per_client: HashMap<NodeId, BTreeMap<u64, Arc<MdsResp>>>,
    cap: usize,
}

/// Default responses remembered per client.
pub const DEFAULT_RETRY_WINDOW: usize = 128;

impl RetryCache {
    pub fn new() -> Self {
        RetryCache { per_client: HashMap::new(), cap: DEFAULT_RETRY_WINDOW }
    }

    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap >= 1);
        RetryCache { per_client: HashMap::new(), cap }
    }

    /// A cached response for an exact duplicate, if remembered.
    pub fn check(&self, from: NodeId, seq: u64) -> Option<Arc<MdsResp>> {
        self.per_client.get(&from).and_then(|m| m.get(&seq)).cloned()
    }

    /// Remember a response, evicting the oldest beyond the window.
    pub fn store(&mut self, from: NodeId, seq: u64, resp: Arc<MdsResp>) {
        let m = self.per_client.entry(from).or_default();
        m.insert(seq, resp);
        while m.len() > self.cap {
            let oldest = *m.keys().next().expect("non-empty");
            m.remove(&oldest);
        }
    }

    /// Forget everything (new active after failover starts empty).
    pub fn clear(&mut self) {
        self.per_client.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(seq: u64) -> Arc<MdsResp> {
        Arc::new(MdsResp::Reply { seq, result: Ok(crate::proto::OpOutput::Done) })
    }

    #[test]
    fn exact_duplicates_hit() {
        let mut c = RetryCache::new();
        c.store(1, 5, resp(5));
        assert!(c.check(1, 5).is_some());
        assert!(c.check(1, 4).is_none(), "unknown seqs execute fresh");
        assert!(c.check(2, 5).is_none(), "caches are per client");
    }

    #[test]
    fn out_of_order_seqs_are_all_remembered() {
        let mut c = RetryCache::new();
        c.store(1, 9, resp(9));
        c.store(1, 3, resp(3));
        assert!(c.check(1, 3).is_some(), "lower seq after higher must not be dropped");
        assert!(c.check(1, 9).is_some());
    }

    #[test]
    fn window_evicts_oldest() {
        let mut c = RetryCache::with_capacity(2);
        c.store(1, 1, resp(1));
        c.store(1, 2, resp(2));
        c.store(1, 3, resp(3));
        assert!(c.check(1, 1).is_none());
        assert!(c.check(1, 2).is_some());
        assert!(c.check(1, 3).is_some());
    }
}
