//! Model-based randomized test: the namespace tree vs a flat reference
//! model (a set of absolute paths with kinds). Every operation must agree
//! with the model on success/failure *and* on the resulting state.
//!
//! These are seeded randomized tests, not `proptest` suites: the vendored
//! `proptest` crate is an intentionally empty stand-in (see
//! `vendor/proptest`), so property coverage comes from the vendored `rand`
//! with fixed seeds — deterministic, shrink-free, CI-friendly.
//! `PARITY_CASES` scales the number of cases (nightly runs more).

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mams::namespace::NamespaceTree;

/// Cases per test; override with `PARITY_CASES` (nightly runs elevated).
fn cases() -> u64 {
    std::env::var("PARITY_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    File,
    Dir,
}

/// The reference model: path → kind, with "/" implicit.
#[derive(Debug, Default)]
struct Model {
    entries: BTreeMap<String, Kind>,
}

impl Model {
    fn parent_ok(&self, p: &str) -> bool {
        match mams_parent(p) {
            Some("/") => true,
            Some(parent) => self.entries.get(parent) == Some(&Kind::Dir),
            None => false,
        }
    }

    fn exists(&self, p: &str) -> bool {
        p == "/" || self.entries.contains_key(p)
    }

    fn children(&self, p: &str) -> Vec<String> {
        let prefix = if p == "/" { "/".to_string() } else { format!("{p}/") };
        self.entries
            .keys()
            .filter(|k| {
                k.starts_with(&prefix)
                    && !k[prefix.len()..].contains('/')
                    && !k[prefix.len()..].is_empty()
            })
            .cloned()
            .collect()
    }

    fn create(&mut self, p: &str) -> bool {
        if self.exists(p) || !self.parent_ok(p) {
            return false;
        }
        self.entries.insert(p.to_string(), Kind::File);
        true
    }

    fn mkdir(&mut self, p: &str) -> bool {
        if self.exists(p) || !self.parent_ok(p) {
            return false;
        }
        self.entries.insert(p.to_string(), Kind::Dir);
        true
    }

    fn delete(&mut self, p: &str, recursive: bool) -> bool {
        match self.entries.get(p) {
            None => false,
            Some(Kind::File) => {
                self.entries.remove(p);
                true
            }
            Some(Kind::Dir) => {
                if !self.children(p).is_empty() && !recursive {
                    return false;
                }
                let prefix = format!("{p}/");
                self.entries.retain(|k, _| k != p && !k.starts_with(&prefix));
                true
            }
        }
    }

    fn rename(&mut self, src: &str, dst: &str) -> bool {
        if src == dst
            || !self.exists(src)
            || src == "/"
            || self.exists(dst)
            || !self.parent_ok(dst)
            || is_descendant(dst, src)
        {
            return false;
        }
        let src_prefix = format!("{src}/");
        let moved: Vec<(String, Kind)> = self
            .entries
            .iter()
            .filter(|(k, _)| k.as_str() == src || k.starts_with(&src_prefix))
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        for (k, _) in &moved {
            self.entries.remove(k);
        }
        for (k, v) in moved {
            let suffix = &k[src.len()..];
            self.entries.insert(format!("{dst}{suffix}"), v);
        }
        true
    }
}

fn mams_parent(p: &str) -> Option<&str> {
    if p == "/" {
        return None;
    }
    match p.rfind('/') {
        Some(0) => Some("/"),
        Some(i) => Some(&p[..i]),
        None => None,
    }
}

fn is_descendant(descendant: &str, ancestor: &str) -> bool {
    descendant.len() > ancestor.len()
        && descendant.starts_with(ancestor)
        && descendant.as_bytes()[ancestor.len()] == b'/'
}

#[derive(Debug, Clone)]
enum Op {
    Create(String),
    Mkdir(String),
    Delete(String, bool),
    Rename(String, String),
    GetInfo(String),
    List(String),
}

/// A path from a tiny alphabet (a/b/c, depth 1..=3) so ops collide often —
/// the interesting cases.
fn small_path(rng: &mut SmallRng) -> String {
    const NAMES: [&str; 3] = ["a", "b", "c"];
    let depth = rng.gen_range(1..4usize);
    let comps: Vec<&str> = (0..depth).map(|_| NAMES[rng.gen_range(0..NAMES.len())]).collect();
    format!("/{}", comps.join("/"))
}

fn rand_op(rng: &mut SmallRng) -> Op {
    match rng.gen_range(0..6u32) {
        0 => Op::Create(small_path(rng)),
        1 => Op::Mkdir(small_path(rng)),
        2 => Op::Delete(small_path(rng), rng.gen_bool(0.5)),
        3 => Op::Rename(small_path(rng), small_path(rng)),
        4 => Op::GetInfo(small_path(rng)),
        _ => Op::List(small_path(rng)),
    }
}

#[test]
fn tree_agrees_with_the_reference_model() {
    for case in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(0x4d0de1 ^ (case << 8));
        let n_ops = rng.gen_range(1..200usize);
        let ops: Vec<Op> = (0..n_ops).map(|_| rand_op(&mut rng)).collect();
        let mut tree = NamespaceTree::new();
        let mut model = Model::default();
        for op in &ops {
            match op {
                Op::Create(p) => {
                    let t = tree.create(p, 1).is_ok();
                    let m = model.create(p);
                    assert_eq!(t, m, "case {case}: create {p} disagreed");
                }
                Op::Mkdir(p) => {
                    let t = tree.mkdir(p).is_ok();
                    let m = model.mkdir(p);
                    assert_eq!(t, m, "case {case}: mkdir {p} disagreed");
                }
                Op::Delete(p, r) => {
                    let t = tree.delete(p, *r).is_ok();
                    let m = model.delete(p, *r);
                    assert_eq!(t, m, "case {case}: delete {p} (r={r}) disagreed");
                }
                Op::Rename(s, d) => {
                    let t = tree.rename(s, d).is_ok();
                    let m = model.rename(s, d);
                    assert_eq!(t, m, "case {case}: rename {s} -> {d} disagreed");
                }
                Op::GetInfo(p) => {
                    let t = tree.getfileinfo(p);
                    assert_eq!(
                        t.is_ok(),
                        model.exists(p),
                        "case {case}: getfileinfo {p} disagreed"
                    );
                    if let Ok(info) = t {
                        if p != "/" {
                            let kind = model.entries[p.as_str()];
                            assert_eq!(info.is_dir, kind == Kind::Dir);
                        }
                    }
                }
                Op::List(p) => {
                    if let Ok(mut names) = tree.list(p) {
                        assert_eq!(
                            model.entries.get(p.as_str()).copied(),
                            if p == "/" { None } else { Some(Kind::Dir) }
                        );
                        let mut expected: Vec<String> = model
                            .children(p)
                            .iter()
                            .map(|c| c.rsplit('/').next().unwrap().to_string())
                            .collect();
                        names.sort();
                        expected.sort();
                        assert_eq!(names, expected, "case {case}: list {p} disagreed");
                    }
                }
            }
        }
        // Final shape agreement.
        let files = model.entries.values().filter(|&&k| k == Kind::File).count() as u64;
        let dirs = model.entries.values().filter(|&&k| k == Kind::Dir).count() as u64;
        assert_eq!(tree.num_files(), files, "case {case}");
        assert_eq!(tree.num_dirs(), dirs, "case {case}");
    }
}
