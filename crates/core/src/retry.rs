//! Duplicate-request handling ("duplicated message handling in the MAMS
//! will avoid the problem of incorrect metadata operations", Section IV-C).
//!
//! Servers remember the last responses per client; an exactly-retried
//! request is answered from the cache, never re-executed. Clients may have
//! several operations outstanding (the MapReduce workers do), so the cache
//! holds a bounded window per client rather than a single entry.
//!
//! Eviction is driven by the client's own receipt watermark: every request
//! piggybacks the highest seq `A` such that the client has received replies
//! for *all* seqs ≤ `A` (`MdsReq::Op::acked`). A response at or below the
//! watermark can never be retried, so it is dropped exactly then — neither
//! early (a blind oldest-first eviction can drop a response the client is
//! actively retrying) nor late (entries linger only while the client might
//! still need them). The capacity bound remains as an overflow backstop for
//! clients that never advance their watermark.
//!
//! After a failover the successor seeds this cache from the replicated
//! retry window ([`mams_namespace::RetryWindow`]) it rebuilt during journal
//! replay, so at-most-once holds *across* the switch: a retry of an op the
//! dead active committed is answered with the recorded outcome, not
//! re-executed.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use mams_namespace::{RetryOutcome, RetryWindow};
use mams_sim::NodeId;

use crate::proto::{MdsResp, OpOutput};

/// Per-client slice of the cache: remembered responses plus the client's
/// cumulative receipt watermark.
#[derive(Debug, Default)]
struct ClientSlot {
    responses: BTreeMap<u64, Arc<MdsResp>>,
    /// Highest seq the client confirmed receiving all replies through.
    acked: u64,
}

/// Bounded per-client response cache. Responses are held behind `Arc` so a
/// cache hit (and the original send) is a reference-count bump, not a deep
/// clone of the reply payload — listings and file infos can be large.
#[derive(Debug, Default)]
pub struct RetryCache {
    per_client: HashMap<NodeId, ClientSlot>,
    /// Requests admitted but not yet answered. A duplicate delivery in this
    /// window (the network duplicated the message, or the client retried
    /// into a slow durability round) must not execute a second time: the
    /// response cache only covers *completed* requests, and a re-execution
    /// of a mutation whose first run is still in flight can interleave with
    /// other clients' operations and corrupt the history.
    inflight: HashSet<(NodeId, u64)>,
    cap: usize,
}

/// Default responses remembered per client (overflow bound; the watermark
/// is the primary eviction signal).
pub const DEFAULT_RETRY_WINDOW: usize = 128;

impl RetryCache {
    pub fn new() -> Self {
        RetryCache {
            per_client: HashMap::new(),
            inflight: HashSet::new(),
            cap: DEFAULT_RETRY_WINDOW,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap >= 1);
        RetryCache { per_client: HashMap::new(), inflight: HashSet::new(), cap }
    }

    /// A cached response for an exact duplicate, if remembered.
    pub fn check(&self, from: NodeId, seq: u64) -> Option<Arc<MdsResp>> {
        self.per_client.get(&from).and_then(|s| s.responses.get(&seq)).cloned()
    }

    /// Admit a request for execution. Returns `false` when the same
    /// `(client, seq)` is already executing — the caller must drop the
    /// duplicate; the original's reply will reach the client (or the client
    /// re-retries and hits the response cache).
    pub fn begin(&mut self, from: NodeId, seq: u64) -> bool {
        self.inflight.insert((from, seq))
    }

    /// Absorb the client's receipt watermark: responses at or below `acked`
    /// have been received (cumulatively) and will never be retried, so they
    /// are dropped now. The watermark is monotonic; a reordered request
    /// carrying an older value is ignored.
    pub fn note_acked(&mut self, from: NodeId, acked: u64) {
        let slot = self.per_client.entry(from).or_default();
        if acked <= slot.acked {
            return;
        }
        slot.acked = acked;
        // Split off the suffix the client may still retry; everything at or
        // below the watermark is garbage.
        slot.responses = slot.responses.split_off(&(acked + 1));
    }

    /// Remember a response. Eviction is watermark-first (see `note_acked`);
    /// the capacity bound only kicks in when a client's un-acked span
    /// overflows it, where it falls back to dropping the lowest seq — the
    /// entry whose retry is least likely still in flight.
    /// Also retires the request's in-flight marker.
    pub fn store(&mut self, from: NodeId, seq: u64, resp: Arc<MdsResp>) {
        self.inflight.remove(&(from, seq));
        let slot = self.per_client.entry(from).or_default();
        if seq <= slot.acked {
            // The client already confirmed receipt past this seq (possible
            // when a watermark overtakes a slow durability round): caching
            // it would only leak.
            return;
        }
        slot.responses.insert(seq, resp);
        while slot.responses.len() > self.cap {
            let oldest = *slot.responses.keys().next().expect("non-empty");
            slot.responses.remove(&oldest);
        }
    }

    /// Seed the cache from a replicated retry window rebuilt during journal
    /// replay (failover: the successor inherits the dead active's
    /// duplicate-suppression state). Entries become exactly the replies the
    /// predecessor sent: `ReplySpec` with the recorded token for
    /// speculatively acked ops, plain `Reply` otherwise.
    ///
    /// Only *journaled* acks live in the window, so a speculative ack whose
    /// batch failover discarded is naturally absent — its retry executes
    /// fresh, which is the `abort_inflight` semantics the predecessor would
    /// have applied on degradation.
    pub fn seed_from_window(&mut self, window: &RetryWindow) {
        for (client, seq, entry) in window.iter() {
            let result = Ok(match &entry.outcome {
                RetryOutcome::Done => OpOutput::Done,
                RetryOutcome::Block(b) => OpOutput::Block(*b),
                RetryOutcome::Info(info) => OpOutput::Info(info.clone()),
            });
            let resp = match entry.token {
                Some(token) => MdsResp::ReplySpec { seq, result, token },
                None => MdsResp::Reply { seq, result },
            };
            self.store(client, seq, Arc::new(resp));
        }
    }

    /// Drop every in-flight marker without caching a response. Called on
    /// degradation: the pending operations were discarded unanswered, so
    /// their retries (same seq, after we are possibly re-promoted) must be
    /// allowed to execute fresh rather than being swallowed forever.
    pub fn abort_inflight(&mut self) {
        self.inflight.clear();
    }

    /// Forget everything (before reseeding from a replayed window, or when
    /// replica state is discarded wholesale).
    pub fn clear(&mut self) {
        self.per_client.clear();
        self.inflight.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(seq: u64) -> Arc<MdsResp> {
        Arc::new(MdsResp::Reply { seq, result: Ok(crate::proto::OpOutput::Done) })
    }

    #[test]
    fn exact_duplicates_hit() {
        let mut c = RetryCache::new();
        c.store(1, 5, resp(5));
        assert!(c.check(1, 5).is_some());
        assert!(c.check(1, 4).is_none(), "unknown seqs execute fresh");
        assert!(c.check(2, 5).is_none(), "caches are per client");
    }

    #[test]
    fn out_of_order_seqs_are_all_remembered() {
        let mut c = RetryCache::new();
        c.store(1, 9, resp(9));
        c.store(1, 3, resp(3));
        assert!(c.check(1, 3).is_some(), "lower seq after higher must not be dropped");
        assert!(c.check(1, 9).is_some());
    }

    #[test]
    fn duplicate_in_flight_is_rejected_until_stored() {
        let mut c = RetryCache::new();
        assert!(c.begin(1, 7), "first delivery executes");
        assert!(!c.begin(1, 7), "duplicate while executing is dropped");
        assert!(c.begin(1, 8), "other seqs are independent");
        assert!(c.begin(2, 7), "other clients are independent");
        c.store(1, 7, resp(7));
        assert!(c.check(1, 7).is_some(), "after completion the cache answers");
        assert!(c.begin(1, 7), "marker retired with the stored response");
    }

    #[test]
    fn abort_clears_markers_but_keeps_responses() {
        let mut c = RetryCache::new();
        c.store(1, 3, resp(3));
        assert!(c.begin(1, 4));
        c.abort_inflight();
        assert!(c.begin(1, 4), "aborted request may execute fresh on retry");
        assert!(c.check(1, 3).is_some(), "completed responses survive the abort");
    }

    #[test]
    fn watermark_evicts_exactly_the_acked_prefix() {
        let mut c = RetryCache::new();
        for seq in 1..=5 {
            c.store(1, seq, resp(seq));
        }
        c.note_acked(1, 3);
        for seq in 1..=3 {
            assert!(c.check(1, seq).is_none(), "seq {seq} at/below watermark dropped");
        }
        for seq in 4..=5 {
            assert!(c.check(1, seq).is_some(), "seq {seq} above watermark retained");
        }
        // Watermarks are per client and monotonic.
        c.store(2, 1, resp(1));
        assert!(c.check(2, 1).is_some(), "other clients unaffected");
        c.note_acked(1, 2);
        assert!(c.check(1, 4).is_some(), "stale (lower) watermark ignored");
    }

    #[test]
    fn store_below_watermark_is_dropped() {
        let mut c = RetryCache::new();
        c.note_acked(1, 10);
        c.store(1, 7, resp(7));
        assert!(c.check(1, 7).is_none(), "client confirmed receipt past 7 already");
        c.store(1, 11, resp(11));
        assert!(c.check(1, 11).is_some());
    }

    #[test]
    fn capacity_remains_an_overflow_backstop() {
        let mut c = RetryCache::with_capacity(2);
        c.store(1, 1, resp(1));
        c.store(1, 2, resp(2));
        c.store(1, 3, resp(3));
        assert!(c.check(1, 1).is_none(), "overflow still drops the lowest seq");
        assert!(c.check(1, 2).is_some());
        assert!(c.check(1, 3).is_some());
    }

    #[test]
    fn seeding_from_a_window_reconstructs_replies() {
        use mams_namespace::{RetryEntry, RetryWindow};
        let mut w = RetryWindow::new();
        w.record(4, 9, RetryEntry { outcome: RetryOutcome::Done, token: None });
        w.record(4, 10, RetryEntry { outcome: RetryOutcome::Block(77), token: Some(12) });
        let mut c = RetryCache::new();
        c.seed_from_window(&w);
        match c.check(4, 9).as_deref() {
            Some(MdsResp::Reply { seq: 9, result: Ok(OpOutput::Done) }) => {}
            other => panic!("unexpected seeded reply {other:?}"),
        }
        match c.check(4, 10).as_deref() {
            Some(MdsResp::ReplySpec { seq: 10, result: Ok(OpOutput::Block(77)), token: 12 }) => {}
            other => panic!("unexpected seeded spec reply {other:?}"),
        }
        assert!(c.check(4, 11).is_none(), "unseen seqs execute fresh");
    }
}
