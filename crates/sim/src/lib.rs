//! # mams-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the substrate every other MAMS crate runs on. The paper
//! evaluated MAMS on a 20-node Linux cluster; we reproduce the protocols on a
//! deterministic discrete-event simulator so that experiments measured in
//! (virtual) seconds — session timeouts, failover windows, MapReduce jobs —
//! complete in milliseconds of wall time and are exactly reproducible from a
//! seed.
//!
//! The kernel provides:
//!
//! * [`SimTime`] / [`Duration`] — microsecond-resolution virtual time,
//! * [`Node`] — the sans-IO protocol trait (messages in, actions out),
//! * [`Ctx`] — the capability handle a node uses to send messages, set
//!   timers, sample randomness and emit trace events,
//! * [`Sim`] — the world: event queue, network model, node lifecycle
//!   (crash / restart / pause), control hooks for fault injection,
//! * [`net::Network`] — per-link latency models, partitions, loss,
//! * [`trace::Trace`] — structured, time-stamped protocol traces used by the
//!   figure harnesses (e.g. the Figure 7 failover-stage breakdown),
//! * [`reliability`] — the analytic MTBF model behind Figure 1.
//!
//! Protocol crates (`mams-coord`, `mams-core`, `mams-cluster`, …) implement
//! [`Node`] and never touch wall-clock time or OS I/O, which is what makes
//! the whole evaluation deterministic.

pub mod event;
pub mod live;
pub mod net;
pub mod node;
pub mod reliability;
pub mod rng;
pub mod time;
pub mod trace;
pub mod world;

pub use live::RealTimePacer;
pub use net::{LatencyModel, LinkShape, Network, RouteFate};
pub use node::{AnyMessage, Ctx, Message, Node, NodeId, TimerId};
pub use rng::DetRng;
pub use time::{Duration, SimTime};
pub use trace::{Trace, TraceEvent};
pub use world::{NodeStatus, Sim, SimConfig};
