//! Wall-clock image-pipeline benchmark: encode/decode of namespace images
//! in the legacy full-path v1 format vs the parent-id delta v2 format, plus
//! chunked streaming decode — the work that dominates junior catch-up and
//! the Table I MTTR sweep.
//!
//! A fixed-seed generator builds realistic trees sized so their *v1* image
//! lands in the 16/64/256 MB classes the paper sweeps, then each stage is
//! timed best-of-5 (identical deterministic work per rep). Results go to
//! `BENCH_image.json` at the repo root so successive PRs can track the
//! perf trajectory.
//!
//! Run from the repo root: `cargo run --release --bin bench_image`
//! (`--quick` runs only the smallest class with fewer reps — the CI smoke).

use std::time::Instant;

use bytes::Bytes;
use mams_namespace::{
    decode_image, encode_image, encode_image_v1, NamespaceTree, StreamingImageDecoder,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 0x4d41_4d53; // "MAMS"
/// Approximate v1 bytes per file for the generated shape (path ~43 chars,
/// fixed attrs, ~2 blocks) — used only to size the tree per class.
const V1_BYTES_PER_FILE: u64 = 72;
/// Files per leaf directory.
const FILES_PER_DIR: u64 = 256;
/// Streaming-decode chunk size (the renewing default is the same order).
const CHUNK: usize = 64 * 1024;

/// Deterministic tree with paper-like shape: two directory levels with
/// realistic component names, `FILES_PER_DIR` files per leaf, 0–3 blocks
/// per file.
fn build_tree(target_files: u64, rng: &mut SmallRng) -> NamespaceTree {
    let mut t = NamespaceTree::new();
    let leaf_dirs = (target_files / FILES_PER_DIR).max(1);
    let tops = ((leaf_dirs as f64).sqrt().ceil() as u64).max(1);
    let subs = leaf_dirs.div_ceil(tops);
    let mut made = 0u64;
    let mut block = 1u64;
    'outer: for d in 0..tops {
        let top = format!("/project{d:04}");
        t.mkdir(&top).unwrap();
        for s in 0..subs {
            let dir = format!("{top}/dataset{s:04}");
            t.mkdir(&dir).unwrap();
            for f in 0..FILES_PER_DIR {
                let p = format!("{dir}/part-{f:05}.data");
                t.create(&p, 3).unwrap();
                for _ in 0..rng.gen_range(0u32..4) {
                    t.add_block(&p, block).unwrap();
                    block += 1;
                }
                if rng.gen_range(0u32..100) < 80 {
                    t.close_file(&p).unwrap();
                }
                made += 1;
                if made >= target_files {
                    break 'outer;
                }
            }
        }
    }
    t
}

/// Best-of-`reps` wall time of `f` in seconds.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

struct ClassResult {
    class_mb: u64,
    files: u64,
    dirs: u64,
    v1_bytes: u64,
    v2_bytes: u64,
    encode_v1_s: f64,
    encode_v2_s: f64,
    decode_v1_s: f64,
    decode_v2_s: f64,
    decode_v2_streaming_s: f64,
}

fn run_class(class_mb: u64, reps: usize) -> ClassResult {
    let mut rng = SmallRng::seed_from_u64(SEED ^ class_mb);
    let target_files = (class_mb * 1024 * 1024) / V1_BYTES_PER_FILE;
    let tree = build_tree(target_files, &mut rng);

    let encode_v1_s = best_of(reps, || encode_image_v1(&tree, 1));
    let encode_v2_s = best_of(reps, || encode_image(&tree, 1));
    let v1 = encode_image_v1(&tree, 1);
    let v2 = encode_image(&tree, 1);

    let decode_v1_s = best_of(reps, || decode_image(v1.data.clone()).unwrap());
    let decode_v2_s = best_of(reps, || decode_image(v2.data.clone()).unwrap());
    let decode_v2_streaming_s = best_of(reps, || {
        let mut d = StreamingImageDecoder::new();
        for c in v2.data.chunks(CHUNK) {
            d.push(c).unwrap();
        }
        d.finish().unwrap()
    });

    // Every decode path must reconstruct the same namespace.
    let fp = tree.fingerprint();
    for img in [&v1, &v2] {
        let (t, _) = decode_image(Bytes::clone(&img.data)).unwrap();
        assert_eq!(t.fingerprint(), fp, "decode mismatch at {class_mb} MB class");
    }

    println!(
        "class {class_mb:>4} MB: {} files | v1 {:>4} MB, v2 {:>4} MB ({:.2}x smaller) | \
         decode v1 {:.3}s, v2 {:.3}s ({:.2}x), streaming {:.3}s | \
         encode v1 {:.3}s, v2 {:.3}s ({:.2}x)",
        tree.num_files(),
        v1.size_bytes() >> 20,
        v2.size_bytes() >> 20,
        v1.size_bytes() as f64 / v2.size_bytes() as f64,
        decode_v1_s,
        decode_v2_s,
        decode_v1_s / decode_v2_s,
        decode_v2_streaming_s,
        encode_v1_s,
        encode_v2_s,
        encode_v1_s / encode_v2_s,
    );

    ClassResult {
        class_mb,
        files: tree.num_files(),
        dirs: tree.num_dirs(),
        v1_bytes: v1.size_bytes(),
        v2_bytes: v2.size_bytes(),
        encode_v1_s,
        encode_v2_s,
        decode_v1_s,
        decode_v2_s,
        decode_v2_streaming_s,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (classes, reps): (&[u64], usize) = if quick { (&[16], 2) } else { (&[16, 64, 256], 5) };

    let results: Vec<ClassResult> = classes.iter().map(|&mb| run_class(mb, reps)).collect();

    // Hand-rolled JSON: the offline serde_json stand-in cannot serialize,
    // and this document is the repo's perf trajectory — it must hold real
    // numbers in every environment.
    let mut doc = String::new();
    doc.push_str(&format!(
        "{{\n  \"bench\": \"image\",\n  \"seed\": {SEED},\n  \"reps\": {reps},\n  \
         \"chunk_bytes\": {CHUNK},\n  \"classes\": [\n"
    ));
    for (i, r) in results.iter().enumerate() {
        doc.push_str(&format!(
            "    {{\n      \"class_mb\": {},\n      \"files\": {},\n      \"dirs\": {},\n      \
             \"v1_bytes\": {},\n      \"v2_bytes\": {},\n      \
             \"size_ratio_v1_over_v2\": {:.3},\n      \
             \"encode_v1_s\": {:.6},\n      \"encode_v2_s\": {:.6},\n      \
             \"encode_speedup_v2\": {:.3},\n      \
             \"decode_v1_s\": {:.6},\n      \"decode_v2_s\": {:.6},\n      \
             \"decode_v2_streaming_s\": {:.6},\n      \"decode_speedup_v2\": {:.3}\n    }}{}\n",
            r.class_mb,
            r.files,
            r.dirs,
            r.v1_bytes,
            r.v2_bytes,
            r.v1_bytes as f64 / r.v2_bytes as f64,
            r.encode_v1_s,
            r.encode_v2_s,
            r.encode_v1_s / r.encode_v2_s,
            r.decode_v1_s,
            r.decode_v2_s,
            r.decode_v2_streaming_s,
            r.decode_v1_s / r.decode_v2_s,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    doc.push_str("  ]\n}\n");
    let out = "BENCH_image.json";
    std::fs::write(out, doc).expect("write BENCH_image.json");
    println!("saved {out}");
}
