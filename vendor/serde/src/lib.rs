//! Offline stand-in for `serde`. The traits are markers: deriving them
//! compiles to empty impls, which is enough for the workspace's own wire
//! formats (hand-rolled over `bytes`). `stand_in_json` is the one hook a
//! type can override to make `serde_json`'s stand-in render it for real
//! (`serde_json::Value` does).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {
    /// JSON rendering hook for the offline serde_json stand-in. `None`
    /// (the default, and what derives produce) renders as `null`.
    fn stand_in_json(&self) -> Option<String> {
        None
    }
}

pub trait Deserialize<'de>: Sized {}

/// Marker mirroring serde's owned-deserialization bound.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn stand_in_json(&self) -> Option<String> {
        (**self).stand_in_json()
    }
}

// Marker impls for the std types the real serde covers, so call sites like
// `serde_json::to_vec(&result)` keep compiling. No bounds on the element
// types: these are inert markers, not real serializers.
macro_rules! mark_std {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

mark_std!(bool, char, String, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, ());

impl Serialize for str {}

impl<T, E> Serialize for Result<T, E> {}
impl<'de, T, E> Deserialize<'de> for Result<T, E> {}
impl<T> Serialize for Option<T> {}
impl<'de, T> Deserialize<'de> for Option<T> {}
impl<T> Serialize for Vec<T> {}
impl<'de, T> Deserialize<'de> for Vec<T> {}
impl<T> Serialize for [T] {}
impl<T, const N: usize> Serialize for [T; N] {}
impl<'de, T, const N: usize> Deserialize<'de> for [T; N] {}
impl<A, B> Serialize for (A, B) {}
impl<'de, A, B> Deserialize<'de> for (A, B) {}
impl<A, B, C> Serialize for (A, B, C) {}
impl<'de, A, B, C> Deserialize<'de> for (A, B, C) {}
impl<K, V> Serialize for std::collections::HashMap<K, V> {}
impl<'de, K, V> Deserialize<'de> for std::collections::HashMap<K, V> {}
impl<K, V> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V> {}
impl<T> Serialize for std::sync::Arc<T> {}
impl<'de, T> Deserialize<'de> for std::sync::Arc<T> {}
impl<T: Serialize> Serialize for Box<T> {
    fn stand_in_json(&self) -> Option<String> {
        (**self).stand_in_json()
    }
}
impl<'de, T> Deserialize<'de> for Box<T> {}
