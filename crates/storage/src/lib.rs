//! # mams-storage — the shared storage pool (SSP)
//!
//! The paper's SSP is "built on existing active or backup servers and needs
//! no additional device or third-party software support" (Section III-A):
//! the active writes metadata modifications and namespace images
//! sequentially as shared files in the pool; standbys synchronize journals
//! through it; juniors read images and journal tails from it during
//! renewing, preferably from a local pool replica.
//!
//! The model here:
//!
//! * [`PoolState`] — the durable, pool-wide contents (per-replica-group
//!   journal segments, latest image, fencing epoch). It survives any single
//!   node crash, exactly like the paper's replicated pool, and is shared by
//!   every [`PoolNode`].
//! * [`PoolNode`] — a cluster node serving the pool protocol with a disk
//!   latency model, so access costs show up in virtual time.
//! * [`proto`] — the request/response vocabulary.
//! * Fencing — every write carries the writer's view epoch; writes from a
//!   deposed active (stale epoch) are refused, implementing the paper's "no
//!   scenario that two metadata servers access the same shared file
//!   simultaneously" IO-fencing guarantee.

pub mod disk;
pub mod node;
pub mod pool;
pub mod proto;

pub use disk::DiskModel;
pub use node::{CompactionPolicy, PoolNode};
pub use pool::{
    ArtifactId, ArtifactKind, GroupStore, Manifest, ManifestEntry, PoolError, PoolState, SharedPool,
};
pub use proto::{PoolReq, PoolResp, ReqId};
