//! Quickstart: stand up a MAMS replica group (one active, three hot
//! standbys), run a workload, kill the active, and watch the failover.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mams::cluster::deploy::{build, DeploySpec};
use mams::cluster::metrics::Metrics;
use mams::cluster::mttr::mttr_from_completions;
use mams::cluster::workload::Workload;
use mams::sim::{Duration, Sim, SimConfig, SimTime};

fn main() {
    // A deterministic simulated cluster: coordination service, shared
    // storage pool, one replica group with three standbys, data servers.
    let mut sim = Sim::new(SimConfig::default());
    let mut cluster =
        build(&mut sim, DeploySpec { groups: 1, standbys_per_group: 3, ..DeploySpec::default() });

    // A closed-loop client creating files as fast as the cluster answers.
    let metrics = Metrics::new(true);
    cluster.add_client(&mut sim, Workload::create_only(0), metrics.clone());

    // Kill the active metadata server at t = 20 s of virtual time.
    let active = cluster.initial_active(0);
    let kill_at = SimTime(20_000_000);
    sim.at(kill_at, move |s| {
        println!("[t=20.0s] >>> crashing the active metadata server (node {active})");
        s.crash(active);
    });

    sim.run_for(Duration::from_secs(45));

    println!(
        "\noperations completed: {} ok, {} failed",
        metrics.ok_count(),
        metrics.failed_count()
    );

    // The failover, step by step, from the protocol trace.
    println!("\nfailover timeline:");
    for e in sim.trace().events() {
        if e.time < kill_at {
            continue;
        }
        match e.tag {
            "sim.crash"
            | "session.expired"
            | "lock.freed"
            | "failover.detected"
            | "election.start"
            | "election.won_bid"
            | "lock.grant"
            | "failover.lock_acquired"
            | "failover.view_updated"
            | "failover.switch_done"
            | "member.standby"
            | "renew.session_start"
            | "renew.promoted" => {
                println!("  {e}");
            }
            _ => {}
        }
    }

    let outages = mttr_from_completions(&metrics.completions(), &[kill_at.micros()]);
    if let Some(o) = outages.first() {
        println!(
            "\nMTTR: {:.3} s (last success {:.3}s, first success after recovery {:.3}s)",
            o.mttr_secs(),
            o.last_success_us as f64 / 1e6,
            o.recovered_us as f64 / 1e6
        );
        println!("The 5 s ZooKeeper-style session timeout dominates; election and the");
        println!("active-standby switch themselves take milliseconds (see Figure 7).");
    } else {
        println!("\nservice did not recover — this should never happen");
    }
}
