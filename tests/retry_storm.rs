//! Randomized retry storms: exact at-most-once across failover, end to end.
//!
//! Each case drives a closed-loop fleet against one replica group while the
//! network drops a sizable fraction of all messages — so replies are lost,
//! clients time out, and the same `(client, seq)` is re-offered over and
//! over — then crashes the active mid-storm so the retries drain into a
//! freshly promoted successor. The successor's answer comes from the
//! journal-replicated retry window, and the suite checks the whole claim:
//!
//! - the recorded client history is **strictly** linearizable — no echo
//!   slack, no "modulo retry duplication" (the Wing–Gong checker's default
//!   since the window became replicated);
//! - no replica ever diverged from the journal;
//! - **journal ↔ window replay parity**: the retry window carried inside
//!   every checkpoint image the active wrote (the `'W'` section a junior
//!   would restore from) has exactly the fingerprint an independent replay
//!   of the shared-pool journal prefix produces — the active's serve-order
//!   fold and a replica's replay fold agree byte-for-byte;
//! - the storm was real: retried operations completed, and some image
//!   actually carried a non-empty window (no vacuous pass).
//!
//! Seeded `SmallRng` drives the randomization (the vendored proptest is an
//! empty shim). Override the case count with `PARITY_CASES=n`; the nightly
//! workflow runs an elevated sweep.

use mams_chaos::{active_of, check_history, CheckOutcome};
use mams_cluster::deploy::{build, DeploySpec};
use mams_cluster::{History, Metrics, Recorder, Workload};
use mams_core::MdsTiming;
use mams_journal::JournalBatch;
use mams_namespace::{
    decode_delta, decode_image_with_window, replay_outcome, NamespaceTree, RetryEntry, RetryWindow,
    ShardedNamespace, ShardedReplaySession,
};
use mams_sim::{Duration, Sim, SimConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn cases(default: u64) -> u64 {
    std::env::var("PARITY_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Continue the retry-window fold exactly as a replica's `apply_records`
/// does: starting from an artifact-restored namespace and window, replay
/// every journal record in `(from_sn, up_to_sn]` and, at each acked
/// record's apply point, reconstruct the outcome from the journal
/// (`replay_outcome`) with the namespace lookup evaluated right after the
/// record applied.
fn fold_window(
    tree: NamespaceTree,
    mut window: RetryWindow,
    batches: &[JournalBatch],
    from_sn: u64,
    up_to_sn: u64,
) -> RetryWindow {
    let ns = ShardedNamespace::from_tree(tree);
    let mut replay = ShardedReplaySession::new();
    for b in batches {
        if b.sn <= from_sn || b.sn > up_to_sn {
            continue;
        }
        let mut acks = b.acks.iter().peekable();
        for (i, (txid, txn)) in b.entries().enumerate() {
            replay.apply(&ns, txn).expect("journaled txns always replay");
            while let Some(ack) = acks.next_if(|a| a.record as usize == i) {
                let outcome = replay_outcome(|p| ns.getfileinfo(p).ok(), txn);
                let token = ack.spec.then_some(txid);
                window.record(ack.client, ack.seq, RetryEntry { outcome, token });
            }
        }
    }
    window
}

struct CaseOutcome {
    records: usize,
    retried_ok: usize,
    parity_checks: usize,
    windowed_checks: usize,
}

fn run_case(case: u64) -> CaseOutcome {
    let mut rng = SmallRng::seed_from_u64(0x5708_4ca5 ^ (case << 8));

    let clients: u32 = rng.gen_range(4u32..7);
    let keys: u64 = rng.gen_range(3u64..7);
    let think_ms: u64 = rng.gen_range(5u64..20);
    let loss: f64 = rng.gen_range(0.10f64..0.25);
    let dup: f64 = rng.gen_range(0.0f64..0.05);
    let storm_secs: u64 = rng.gen_range(6u64..10);

    let mut sim = Sim::new(SimConfig { seed: 0x570_12b ^ case, ..SimConfig::default() });
    // Checkpoint + delta cadence on, so the active writes images whose 'W'
    // sections the parity check below can hold against the journal.
    let timing = MdsTiming {
        renew_image_gap: 64,
        checkpoint_interval: Some(Duration::from_secs(6)),
        delta_interval: Some(Duration::from_secs(2)),
        ..MdsTiming::default()
    };
    let spec = DeploySpec {
        groups: 1,
        standbys_per_group: 2,
        juniors_per_group: 1,
        timing,
        ..DeploySpec::default()
    };
    let mut d = build(&mut sim, spec);
    let history = History::new();
    let metrics = Metrics::new(false);
    for _ in 0..clients {
        let client = d.next_client_id();
        let log = history.clone();
        let think = Duration::from_millis(think_ms);
        d.add_client_with(&mut sim, Workload::shared_hot(keys), metrics.clone(), move |mut c| {
            c.history = Some(Recorder { client, log });
            c.think = think;
            c
        });
    }

    // Warm up clean, then storm: global loss makes replies vanish and the
    // same-seq retries pile up, duplication re-delivers live requests.
    sim.run_for(Duration::from_secs(4));
    sim.net_mut().set_loss_probability(loss);
    sim.net_mut().set_dup_probability(dup);
    sim.run_for(Duration::from_secs(storm_secs));

    // Mid-storm failover: whoever is active dies while retries are in
    // flight. The successor must answer them from the seeded window.
    let victim = active_of(&sim, 0).unwrap_or_else(|| d.initial_active(0));
    sim.crash(victim);
    sim.run_for(Duration::from_secs(6));
    sim.net_mut().set_loss_probability(0.0);
    sim.net_mut().set_dup_probability(0.0);
    sim.restart(victim);
    sim.run_for(Duration::from_secs(10));

    // ---- strict linearizability over the whole storm ----
    let records = history.records();
    let ok_count = records.iter().filter(|r| r.ok == Some(true)).count();
    assert!(ok_count > 50, "case {case}: workload barely ran ({ok_count} ok)");
    let retried_ok = records
        .iter()
        .filter(|r| r.ok == Some(true) && r.attempts > 1 && r.op.is_mutation())
        .count();
    match check_history(&records) {
        CheckOutcome::Ok { .. } => {}
        CheckOutcome::Inconclusive { states } => {
            panic!("case {case}: checker ran out of budget after {states} states")
        }
        CheckOutcome::Violation { witness } => {
            panic!("case {case}: retry storm broke strict linearizability: {witness}")
        }
    }
    assert!(
        !sim.trace().events().iter().any(|e| e.tag == "replica.diverged"),
        "case {case}: a replica diverged from the journal"
    );

    // ---- journal ↔ window replay parity ----
    // The base image's 'W' section and every delta's window are the
    // active's serve-order fold at their respective sns; a junior restoring
    // from the base and folding the shared journal forward must land on the
    // identical window the newest delta carries. (The journal prefix below
    // the base sn is compacted away, which is exactly why the artifacts
    // must carry the window in the first place.)
    let (base, tail, delta) = {
        let pool = d.shared_pool.lock();
        let g = pool.group(0).expect("group 0 store");
        let base = g
            .manifest()
            .base()
            .and_then(|e| g.artifact_chunk(e.id, 0, u64::MAX).ok().map(|(bytes, _)| bytes));
        let after = g.manifest().base().map(|e| e.end_sn).unwrap_or(0);
        let tail: Vec<JournalBatch> = g
            .read_journal(after, usize::MAX)
            .unwrap_or_default()
            .iter()
            .map(|b| (**b).clone())
            .collect();
        let delta = g
            .manifest()
            .deltas()
            .last()
            .and_then(|e| g.artifact_chunk(e.id, 0, u64::MAX).ok().map(|(bytes, _)| bytes));
        (base, tail, delta)
    };
    let mut parity_checks = 0;
    let mut windowed_checks = 0;
    if let (Some(base), Some(delta)) = (base, delta) {
        let (tree, base_sn, base_window) =
            decode_image_with_window(base).expect("the pool base image decodes");
        let d = decode_delta(&delta).expect("the newest pool delta decodes");
        let folded = fold_window(tree, base_window, &tail, base_sn, d.end_sn);
        assert_eq!(
            folded.fingerprint(),
            d.window.fingerprint(),
            "case {case}: replay fold from base sn {base_sn} ({} entries) disagrees \
             with the delta window at sn {} ({} entries)",
            folded.len(),
            d.end_sn,
            d.window.len(),
        );
        parity_checks += 1;
        if !d.window.is_empty() {
            windowed_checks += 1;
        }
    }

    CaseOutcome { records: records.len(), retried_ok, parity_checks, windowed_checks }
}

/// Randomized sweep: storms of lost replies and duplicated deliveries across
/// a mid-storm failover never double-apply, never break strict
/// linearizability, and every checkpointed window matches its journal.
#[test]
fn retry_storms_stay_exactly_once_across_failover() {
    let mut total_records = 0usize;
    let mut total_retried = 0usize;
    let mut total_parity = 0usize;
    let mut total_windowed = 0usize;
    for case in 0..cases(4) {
        let out = run_case(case);
        total_records += out.records;
        total_retried += out.retried_ok;
        total_parity += out.parity_checks;
        total_windowed += out.windowed_checks;
    }
    assert!(total_records > 500, "sweep too small to mean anything ({total_records} records)");
    assert!(
        total_retried > 0,
        "no completed multi-attempt mutation across the sweep — the storm never forced a retry"
    );
    assert!(total_parity > 0, "no base+delta chain was ever parity-checked");
    assert!(
        total_windowed > 0,
        "every checked delta had an empty window — the parity check was vacuous"
    );
}
