//! Shrink a failing fault program to a minimal witness.
//!
//! Greedy delta-debugging: repeatedly try dropping one action and rerun
//! the scenario with the shortened program under the same seed; keep any
//! drop that still fails, until a fixpoint (or the rerun budget runs out).
//! Because [`FaultKind`](crate::scenario::FaultKind) applications are
//! status-guarded no-ops when their target is already in the desired
//! state, a program with its crash/restart pairs broken up stays
//! well-formed — which is what makes single-action dropping sound here.

use crate::engine::{run_scenario, RunConfig, RunReport};
use crate::scenario::{FaultAction, Scenario};

/// Result of shrinking.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// Minimal program still reproducing a failure (1-minimal w.r.t.
    /// action dropping, unless the budget ran out first).
    pub program: Vec<FaultAction>,
    /// The failing report produced by the minimal program.
    pub report: RunReport,
    /// Reruns spent.
    pub runs: usize,
}

/// Shrink `failing` (the program of a failed run of `sc` under `cfg`) with
/// at most `max_runs` reruns.
pub fn shrink(sc: &Scenario, cfg: &RunConfig, failing: &RunReport, max_runs: usize) -> Shrunk {
    let mut program = failing.program.clone();
    let mut report = failing.clone();
    let mut runs = 0;

    let rerun = |prog: Vec<FaultAction>| {
        let mut c = cfg.clone();
        c.program = Some(prog);
        run_scenario(sc, &c)
    };

    loop {
        let mut dropped_any = false;
        let mut i = 0;
        while i < program.len() && runs < max_runs {
            let mut candidate = program.clone();
            candidate.remove(i);
            runs += 1;
            let rep = rerun(candidate.clone());
            if rep.failed() {
                program = candidate;
                report = rep;
                dropped_any = true;
                // Same index now points at the next action.
            } else {
                i += 1;
            }
        }
        if !dropped_any || runs >= max_runs {
            break;
        }
    }
    Shrunk { program, report, runs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    #[test]
    fn injected_bug_shrinks_to_the_empty_program() {
        // The double-ack defect fails with *no* faults at all, so every
        // action of any program must shrink away.
        let sc = scenario::quiet();
        let cfg = RunConfig { seed: 5, inject_double_ack: true, ..Default::default() };
        let failing = run_scenario(&sc, &cfg);
        assert!(failing.failed(), "teeth run must fail");
        let s = shrink(&sc, &cfg, &failing, 8);
        assert!(s.program.is_empty(), "minimal witness should be empty, got {:?}", s.program);
        assert!(s.report.failed());
    }
}
