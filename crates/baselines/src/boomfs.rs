//! Boom-FS: metadata replicated through a Paxos distributed log.
//!
//! "To achieve reliability, it adopts a globally-consistent distributed log
//! to guarantee a total ordering over events affecting replicated states"
//! (Section II). Every metadata mutation is proposed into the
//! `mams-paxos` replicated log and applied at every member; reads are
//! served by the leader. The costs the paper attributes to this design fall
//! out structurally: each mutation pays a consensus round trip in the
//! normal case, and failover pays leader election plus log repair
//! ("centralizing repair action decisions and state transition, which leads
//! to additional failover time").

use std::collections::HashMap;

use bytes::Bytes;
use mams_coord::{CoordClient, Incoming};
use mams_core::{CpuModel, FsOp, Ingress, IngressItem, MdsReq, MdsResp, OpOutput};
use mams_namespace::NamespaceTree;
use mams_paxos::rsm::{RsmApp, RsmConfig, RsmMsg, RsmNode};
use mams_sim::{Ctx, Duration, Message, Node, NodeId, Sim};

use crate::common::{exec_op, RetryCache};

/// Adapter timer tokens (RSM uses 1 and 2).
const T_PUBLISH: u64 = 100;
const T_DRAIN: u64 = 101;

/// Hand-rolled wire codec for the RSM payloads. The vendored `serde_json`
/// stand-in can serialize but its `from_slice` always errors (offline build
/// without a real JSON parser), which silently turned every applied command
/// into a no-op and every query into an error. Commands and query results
/// only ever cross this adapter, so a private tag-byte binary format is all
/// the RSM needs.
mod wire {
    use bytes::Bytes;
    use mams_core::{FsOp, OpOutput};
    use mams_namespace::FileInfo;

    fn put_str(out: &mut Vec<u8>, s: &str) {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }

    fn get_u32(buf: &mut &[u8]) -> Option<u32> {
        let (head, rest) = buf.split_first_chunk::<4>()?;
        *buf = rest;
        Some(u32::from_le_bytes(*head))
    }

    fn get_u64(buf: &mut &[u8]) -> Option<u64> {
        let (head, rest) = buf.split_first_chunk::<8>()?;
        *buf = rest;
        Some(u64::from_le_bytes(*head))
    }

    fn get_u8(buf: &mut &[u8]) -> Option<u8> {
        let (&b, rest) = buf.split_first()?;
        *buf = rest;
        Some(b)
    }

    fn get_str(buf: &mut &[u8]) -> Option<String> {
        let len = get_u32(buf)? as usize;
        if buf.len() < len {
            return None;
        }
        let (head, rest) = buf.split_at(len);
        let s = std::str::from_utf8(head).ok()?.to_string();
        *buf = rest;
        Some(s)
    }

    pub fn encode_op(op: &FsOp) -> Bytes {
        let mut out = Vec::new();
        match op {
            FsOp::Create { path, replication } => {
                out.push(0);
                put_str(&mut out, path);
                out.push(*replication);
            }
            FsOp::Mkdir { path } => {
                out.push(1);
                put_str(&mut out, path);
            }
            FsOp::Delete { path, recursive } => {
                out.push(2);
                put_str(&mut out, path);
                out.push(*recursive as u8);
            }
            FsOp::Rename { src, dst } => {
                out.push(3);
                put_str(&mut out, src);
                put_str(&mut out, dst);
            }
            FsOp::GetFileInfo { path } => {
                out.push(4);
                put_str(&mut out, path);
            }
            FsOp::List { path } => {
                out.push(5);
                put_str(&mut out, path);
            }
            FsOp::AddBlock { path, len } => {
                out.push(6);
                put_str(&mut out, path);
                out.extend_from_slice(&len.to_le_bytes());
            }
            FsOp::CloseFile { path } => {
                out.push(7);
                put_str(&mut out, path);
            }
            FsOp::SetPerm { path, perm } => {
                out.push(8);
                put_str(&mut out, path);
                out.extend_from_slice(&(*perm as u32).to_le_bytes());
            }
        }
        Bytes::from(out)
    }

    pub fn decode_op(mut buf: &[u8]) -> Option<FsOp> {
        let b = &mut buf;
        let op = match get_u8(b)? {
            0 => FsOp::Create { path: get_str(b)?, replication: get_u8(b)? },
            1 => FsOp::Mkdir { path: get_str(b)? },
            2 => FsOp::Delete { path: get_str(b)?, recursive: get_u8(b)? != 0 },
            3 => FsOp::Rename { src: get_str(b)?, dst: get_str(b)? },
            4 => FsOp::GetFileInfo { path: get_str(b)? },
            5 => FsOp::List { path: get_str(b)? },
            6 => {
                let path = get_str(b)?;
                let len = get_u32(b)?;
                FsOp::AddBlock { path, len }
            }
            7 => FsOp::CloseFile { path: get_str(b)? },
            8 => {
                let path = get_str(b)?;
                let perm = get_u32(b)? as u16;
                FsOp::SetPerm { path, perm }
            }
            _ => return None,
        };
        buf.is_empty().then_some(op)
    }

    pub fn encode_result(r: &Result<OpOutput, String>) -> Bytes {
        let mut out = Vec::new();
        match r {
            Err(e) => {
                out.push(0);
                put_str(&mut out, e);
            }
            Ok(OpOutput::Done) => out.push(1),
            Ok(OpOutput::Block(id)) => {
                out.push(2);
                out.extend_from_slice(&id.to_le_bytes());
            }
            Ok(OpOutput::Listing(names)) => {
                out.push(3);
                out.extend_from_slice(&(names.len() as u32).to_le_bytes());
                for n in names {
                    put_str(&mut out, n);
                }
            }
            Ok(OpOutput::Info(info)) => {
                out.push(4);
                put_str(&mut out, &info.path);
                out.push(info.is_dir as u8);
                out.extend_from_slice(&(info.blocks.len() as u32).to_le_bytes());
                for bl in &info.blocks {
                    out.extend_from_slice(&bl.to_le_bytes());
                }
                out.push(info.replication);
                out.push(info.sealed as u8);
                out.extend_from_slice(&(info.perm as u32).to_le_bytes());
                out.extend_from_slice(&(info.child_count as u64).to_le_bytes());
            }
        }
        Bytes::from(out)
    }

    pub fn decode_result(mut buf: &[u8]) -> Option<Result<OpOutput, String>> {
        let b = &mut buf;
        let r = match get_u8(b)? {
            0 => Err(get_str(b)?),
            1 => Ok(OpOutput::Done),
            2 => Ok(OpOutput::Block(get_u64(b)?)),
            3 => {
                let n = get_u32(b)? as usize;
                let mut names = Vec::with_capacity(n);
                for _ in 0..n {
                    names.push(get_str(b)?);
                }
                Ok(OpOutput::Listing(names))
            }
            4 => {
                let path = get_str(b)?;
                let is_dir = get_u8(b)? != 0;
                let n = get_u32(b)? as usize;
                let mut blocks = Vec::with_capacity(n);
                for _ in 0..n {
                    blocks.push(get_u64(b)?);
                }
                let replication = get_u8(b)?;
                let sealed = get_u8(b)? != 0;
                let perm = get_u32(b)? as u16;
                let child_count = get_u64(b)? as usize;
                Ok(OpOutput::Info(FileInfo {
                    path,
                    is_dir,
                    blocks,
                    replication,
                    sealed,
                    perm,
                    child_count,
                }))
            }
            _ => return None,
        };
        buf.is_empty().then_some(r)
    }
}

#[derive(Debug, Clone, Copy)]
pub struct BoomFsSpec {
    /// Replica count (the distributed log's membership).
    pub members: usize,
    pub heartbeat: Duration,
    /// Leader failure-detection budget; Boom-FS sits between MAMS (~5 s
    /// session timeout) and the heavier namenode designs.
    pub election_timeout: Duration,
    /// Leader-side consensus CPU per mutation (proposal marshalling +
    /// accept handling for each follower).
    pub consensus_cpu: Duration,
}

impl Default for BoomFsSpec {
    fn default() -> Self {
        BoomFsSpec {
            members: 3,
            heartbeat: Duration::from_millis(500),
            election_timeout: Duration::from_secs(6),
            consensus_cpu: Duration::from_micros(40),
        }
    }
}

/// The replicated application: a namespace driven by serialized [`FsOp`]s.
pub struct NsApp {
    ns: NamespaceTree,
    next_block: u64,
}

impl NsApp {
    fn new() -> Self {
        NsApp { ns: NamespaceTree::new(), next_block: 1 }
    }
}

impl RsmApp for NsApp {
    fn apply(&mut self, _slot: u64, cmd: &Bytes) {
        if let Some(op) = wire::decode_op(cmd) {
            // Validation happens at apply time in an RSM; a failed op is a
            // no-op on the state (all replicas agree on that too).
            let _ = exec_op(&mut self.ns, &mut self.next_block, &op);
        }
    }

    fn query(&mut self, q: &Bytes) -> Bytes {
        let result: Result<OpOutput, String> = match wire::decode_op(q) {
            Some(op) => exec_op(&mut self.ns, &mut self.next_block, &op).map(|(_, out)| out),
            None => Err("malformed query".into()),
        };
        wire::encode_result(&result)
    }
}

/// One Boom-FS server: an RSM member plus the client-protocol adapter.
pub struct BoomFsServer {
    rsm: RsmNode<NsApp>,
    coord: CoordClient,
    published: bool,
    retry: RetryCache,
    /// rsm request id → (client, client seq, is_query).
    waiting: HashMap<u64, (NodeId, u64)>,
    next_req: u64,
    ingress: Ingress,
    cpu: CpuModel,
    consensus_cpu: Duration,
}

impl BoomFsServer {
    pub fn new(coord: NodeId, cfg: RsmConfig, consensus_cpu: Duration) -> Self {
        BoomFsServer {
            rsm: RsmNode::new(cfg, NsApp::new()),
            coord: CoordClient::new(coord, Duration::from_secs(2)),
            published: false,
            retry: RetryCache::new(),
            waiting: HashMap::new(),
            next_req: 1,
            ingress: Ingress::default(),
            cpu: CpuModel::default(),
            consensus_cpu,
        }
    }

    fn drain(&mut self, ctx: &mut Ctx<'_>) {
        let mut cpu = self.cpu;
        cpu.mutation += self.consensus_cpu;
        for item in self.ingress.drain(Duration::from_millis(2), cpu) {
            if let IngressItem::Client { from, op, seq, .. } = item {
                self.process(ctx, from, op, seq);
            }
        }
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, from: NodeId, op: FsOp, seq: u64) {
        if !self.rsm.is_leader() {
            ctx.send(from, MdsResp::NotActive { seq });
            return;
        }
        let encoded = wire::encode_op(&op);
        let rsm_req = self.next_req;
        self.next_req += 1;
        self.waiting.insert(rsm_req, (from, seq));
        let me = ctx.id();
        if op.is_mutation() {
            ctx.send(me, RsmMsg::Propose { cmd: encoded, req: rsm_req });
        } else {
            ctx.send(me, RsmMsg::Query { q: encoded, req: rsm_req });
        }
    }

    fn reply(&mut self, ctx: &mut Ctx<'_>, to: NodeId, seq: u64, result: Result<OpOutput, String>) {
        let resp = std::sync::Arc::new(MdsResp::Reply { seq, result });
        self.retry.store(to, seq, resp.clone());
        ctx.send(to, resp);
    }

    fn maybe_publish(&mut self, ctx: &mut Ctx<'_>) {
        let leading = self.rsm.is_leader();
        if leading && !self.published {
            let me = ctx.id();
            self.coord.set(ctx, mams_core::keys::active(0), me.to_string(), true);
            self.published = true;
        } else if !leading && self.published {
            self.coord
                .multi(ctx, vec![mams_coord::KeyOp::Delete { key: mams_core::keys::active(0) }]);
            self.published = false;
        }
    }
}

impl Node for BoomFsServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.coord.start(ctx);
        self.rsm.on_start(ctx);
        ctx.set_timer(Duration::from_millis(200), T_PUBLISH);
        ctx.set_timer(Duration::from_millis(2), T_DRAIN);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.coord.on_timer(ctx, token) {
            return;
        }
        if token == T_PUBLISH {
            self.maybe_publish(ctx);
            ctx.set_timer(Duration::from_millis(200), T_PUBLISH);
            return;
        }
        if token == T_DRAIN {
            self.drain(ctx);
            ctx.set_timer(Duration::from_millis(2), T_DRAIN);
            return;
        }
        self.rsm.on_timer(ctx, token);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        let msg = match CoordClient::classify(msg) {
            Ok(Incoming::Resp(_) | Incoming::Event(_)) => return,
            Err(m) => m,
        };
        let msg = match msg.downcast::<RsmMsg>() {
            Ok(RsmMsg::ProposeReply { req, committed, .. }) => {
                if let Some((client, seq)) = self.waiting.remove(&req) {
                    if committed {
                        self.reply(ctx, client, seq, Ok(OpOutput::Done));
                    } else {
                        ctx.send(client, MdsResp::NotActive { seq });
                    }
                }
                return;
            }
            Ok(RsmMsg::QueryReply { req, ok, result, .. }) => {
                if let Some((client, seq)) = self.waiting.remove(&req) {
                    if ok {
                        let decoded: Result<OpOutput, String> = result
                            .as_deref()
                            .and_then(wire::decode_result)
                            .unwrap_or_else(|| Err("malformed query result".into()));
                        self.reply(ctx, client, seq, decoded);
                    } else {
                        ctx.send(client, MdsResp::NotActive { seq });
                    }
                }
                return;
            }
            Ok(other) => {
                self.rsm.on_message(ctx, from, Message::new(other));
                return;
            }
            Err(m) => m,
        };
        if let Ok(req) = msg.downcast::<MdsReq>() {
            match req {
                MdsReq::Op { op, seq, .. } => {
                    if let Some(cached) = self.retry.check(from, seq) {
                        ctx.send(from, cached);
                        return;
                    }
                    if !self.rsm.is_leader() {
                        ctx.send(from, MdsResp::NotActive { seq });
                        return;
                    }
                    self.ingress.push(from, op, seq, None);
                }
                // Baselines are never driven in speculative mode.
                MdsReq::OpSpec { .. } | MdsReq::BlockReport { .. } | MdsReq::Checkpoint => {}
            }
        }
    }
}

/// Build a Boom-FS cluster. Returns the member node ids.
pub fn build(sim: &mut Sim, coord: NodeId, spec: BoomFsSpec) -> Vec<NodeId> {
    let base = sim.num_nodes() as NodeId;
    let members: Vec<NodeId> = (0..spec.members as NodeId).map(|i| base + i).collect();
    for (i, &planned) in members.iter().enumerate() {
        let mut cfg = RsmConfig::new(members.clone(), i as u32);
        cfg.heartbeat = spec.heartbeat;
        cfg.election_timeout = spec.election_timeout;
        let got = sim.add_node(
            format!("boomfs-{i}"),
            Box::new(BoomFsServer::new(coord, cfg, spec.consensus_cpu)),
        );
        assert_eq!(got, planned);
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use mams_cluster::metrics::Metrics;
    use mams_cluster::mttr::mttr_from_completions;
    use mams_cluster::workload::Workload;
    use mams_cluster::{ClientConfig, FsClient};
    use mams_coord::{CoordConfig, CoordServer};
    use mams_namespace::Partitioner;
    use mams_sim::{DetRng, Sim, SimConfig, SimTime};

    fn boot(seed: u64) -> (Sim, NodeId, Vec<NodeId>) {
        let mut sim = Sim::new(SimConfig { seed, ..SimConfig::default() });
        let coord = sim.add_node("coord", Box::new(CoordServer::new(CoordConfig::default())));
        let members = build(&mut sim, coord, BoomFsSpec::default());
        (sim, coord, members)
    }

    #[test]
    fn wire_codec_round_trips() {
        let ops = vec![
            FsOp::Create { path: "/a/f".into(), replication: 3 },
            FsOp::Mkdir { path: "/a".into() },
            FsOp::Delete { path: "/a".into(), recursive: true },
            FsOp::Rename { src: "/a".into(), dst: "/b".into() },
            FsOp::GetFileInfo { path: "/".into() },
            FsOp::List { path: "/a".into() },
            FsOp::AddBlock { path: "/a/f".into(), len: 1 << 20 },
            FsOp::CloseFile { path: "/a/f".into() },
            FsOp::SetPerm { path: "/a/f".into(), perm: 0o644 },
        ];
        for op in &ops {
            let enc = wire::encode_op(op);
            assert_eq!(wire::decode_op(&enc).as_ref(), Some(op), "{op:?}");
        }
        let results: Vec<Result<OpOutput, String>> = vec![
            Err("no such file".into()),
            Ok(OpOutput::Done),
            Ok(OpOutput::Block(42)),
            Ok(OpOutput::Listing(vec!["x".into(), "y".into()])),
            Ok(OpOutput::Info(mams_namespace::FileInfo {
                path: "/a/f".into(),
                is_dir: false,
                blocks: vec![1, 2, 3],
                replication: 2,
                sealed: true,
                perm: 0o755,
                child_count: 0,
            })),
        ];
        for r in &results {
            let enc = wire::encode_result(r);
            assert_eq!(wire::decode_result(&enc).as_ref(), Some(r), "{r:?}");
        }
        // Truncated and trailing-garbage inputs are rejected, not misparsed.
        let enc = wire::encode_op(&ops[0]);
        assert_eq!(wire::decode_op(&enc[..enc.len() - 1]), None);
        let mut long = enc.to_vec();
        long.push(0);
        assert_eq!(wire::decode_op(&long), None);
    }

    #[test]
    fn serves_clients_after_electing_a_leader() {
        let (mut sim, coord, _members) = boot(11);
        let m = Metrics::new(false);
        let mut cfg = ClientConfig::new(coord, Partitioner::new(1));
        cfg.start_delay = Duration::from_secs(10); // let the RSM elect
        sim.add_node(
            "client",
            Box::new(FsClient::new(cfg, Workload::mixed(0), m.clone(), DetRng::seed_from_u64(5))),
        );
        sim.run_for(Duration::from_secs(40));
        assert!(m.ok_count() > 300, "got {}", m.ok_count());
        assert_eq!(m.failed_count(), 0);
    }

    #[test]
    fn leader_crash_recovers_slower_than_mams_but_recovers() {
        let (mut sim, coord, members) = boot(12);
        let m = Metrics::new(true);
        let mut cfg = ClientConfig::new(coord, Partitioner::new(1));
        cfg.start_delay = Duration::from_secs(10);
        sim.add_node(
            "client",
            Box::new(FsClient::new(
                cfg,
                Workload::create_only(0),
                m.clone(),
                DetRng::seed_from_u64(6),
            )),
        );
        // Kill whichever member is the published leader at t=30s.
        let kill = SimTime(30_000_000);
        sim.at(kill, move |s| {
            // The leader is the one whose name appears in the last
            // lock-free way we have: crash the first member that traced
            // rsm.leader most recently. Simpler: crash members[0] if up —
            // election is symmetric, so re-run with the real leader below.
            let _ = &members;
            // Find the leader via the trace.
            let leader = s
                .trace()
                .events()
                .iter()
                .rev()
                .find(|e| e.tag == "rsm.leader")
                .map(|e| e.node)
                .expect("a leader was elected");
            s.crash(leader);
        });
        sim.run_for(Duration::from_secs(80));
        let outages = mttr_from_completions(&m.completions(), &[kill.micros()]);
        assert_eq!(outages.len(), 1, "service must recover after leader crash");
        let mttr = outages[0].mttr_secs();
        // Election timeout 6 s (±50% jitter) + repair: expect ~4–14 s.
        assert!((3.0..16.0).contains(&mttr), "BoomFS MTTR {mttr:.1}s");
    }
}
