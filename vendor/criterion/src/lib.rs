//! Offline stand-in for `criterion`.
//!
//! Runs each benchmark closure a small fixed number of times (3) so bench
//! binaries exercise their code paths deterministically and quickly, and
//! prints each bench name. There is no statistics machinery, no sampling,
//! and no report output.

const STAND_IN_ITERS: u32 = 3;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared measurement throughput; recorded but unused by the stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Batch sizing hints; the stand-in ignores them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    _private: (),
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..STAND_IN_ITERS {
            black_box(routine());
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..STAND_IN_ITERS {
            let input = setup();
            black_box(routine(input));
        }
    }

    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..STAND_IN_ITERS {
            let mut input = setup();
            black_box(routine(&mut input));
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench: {}/{}", self.name, id);
        let mut b = Bencher { _private: () };
        f(&mut b);
        self
    }

    pub fn finish(self) {}
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench: {id}");
        let mut b = Bencher { _private: () };
        f(&mut b);
        self
    }

    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config.configure_from_args();
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn iter_runs_fixed_count() {
        let n = Cell::new(0u32);
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1)).bench_function("f", |b| {
            b.iter(|| n.set(n.get() + 1));
        });
        g.finish();
        assert_eq!(n.get(), STAND_IN_ITERS);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let setups = Cell::new(0u32);
        let mut b = Bencher { _private: () };
        b.iter_batched(
            || {
                setups.set(setups.get() + 1);
                7u64
            },
            |x| x * 2,
            BatchSize::SmallInput,
        );
        assert_eq!(setups.get(), STAND_IN_ITERS);
    }
}
