//! # mams-baselines — the comparison systems from the paper's evaluation
//!
//! Reimplementations of each baseline's *recovery structure* over the same
//! simulator, coordination service, and client protocol as MAMS, so the
//! comparisons in Figures 5/6, Table I, and Figure 9 measure mechanism
//! differences rather than implementation accidents:
//!
//! * [`hdfs`] — vanilla single-namenode HDFS: no replication, no recovery;
//!   the throughput reference line.
//! * [`backupnode`] — HDFS BackupNode: asynchronous journal streaming to one
//!   backup (fast normal ops, no consistency guarantee); on takeover the
//!   backup must **recollect every block location** from the data servers,
//!   so its MTTR grows with file-system scale (Table I's rising column).
//! * [`avatar`] — Facebook AvatarNode: hot standby tailing an NFS-shared
//!   edit log, data servers reporting to both avatars; failover is dominated
//!   by the client/VIP redirection machinery (flat, tens of seconds).
//! * [`hadoop_ha`] — Hadoop HA with a Quorum Journal Manager: edits written
//!   to a quorum of journal nodes, ZKFC-style election, epoch fencing on the
//!   quorum (flat, in the teens of seconds).
//! * [`boomfs`] — Boom-FS: metadata replicated through a Paxos distributed
//!   log (`mams-paxos`'s RSM); every mutation pays a consensus round and
//!   failover pays leader election plus log repair.
//!
//! Where a baseline's cost is driven by machinery we do not simulate at
//! full fidelity (Avatar's VIP switch, the HA namenode's state transition),
//! the cost appears as a **named, documented calibration constant** derived
//! from the published numbers; everything structural (quorum rounds, block
//! recollection proportional to scale, journal tailing) is executed for
//! real.

pub mod avatar;
pub mod backupnode;
pub mod boomfs;
pub mod common;
pub mod hadoop_ha;
pub mod hdfs;

pub use avatar::AvatarSpec;
pub use backupnode::BackupNodeSpec;
pub use boomfs::BoomFsSpec;
pub use common::FsScale;
pub use hadoop_ha::HadoopHaSpec;
pub use hdfs::HdfsSpec;
