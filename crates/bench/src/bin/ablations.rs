//! Ablations over the design choices DESIGN.md calls out:
//!
//! 1. failure-detection (session) timeout vs MTTR — detection dominates
//!    MAMS failover, so MTTR ≈ timeout + a small constant;
//! 2. number of hot standbys vs MTTR and vs throughput — one standby is
//!    enough for fast failover; each standby costs a few percent of
//!    mutation throughput (reliability is what the extras buy);
//! 3. SSP journal-disk latency vs client op latency — the "built-in shared
//!    storage pool reduces the overhead for state synchronization" claim:
//!    ops track pool latency, so a slow pool *would* be the bottleneck;
//! 4. journal batch flush interval — aggregation latency/throughput trade;
//! 5. the renewing protocol's image path vs journal-only replay for a
//!    large sn gap — why juniors load images instead of replaying
//!    everything.

use mams_bench::{print_table, save_json};
use mams_cluster::deploy::{build, DeploySpec};
use mams_cluster::metrics::Metrics;
use mams_cluster::mttr::mttr_from_completions;
use mams_cluster::workload::Workload;
use mams_core::MdsReq;
use mams_sim::{Duration, Sim, SimConfig, SimTime};
use mams_storage::DiskModel;

fn base_spec(standbys: usize) -> DeploySpec {
    DeploySpec { groups: 1, standbys_per_group: standbys, ..DeploySpec::default() }
}

fn mttr_with(spec: DeploySpec, seed: u64) -> f64 {
    let mut sim = Sim::new(SimConfig { seed, ..SimConfig::default() });
    let mut d = build(&mut sim, spec);
    let m = Metrics::new(true);
    d.add_client(&mut sim, Workload::create_only(0), m.clone());
    let victim = d.initial_active(0);
    let kill = SimTime(15_000_000);
    sim.at(kill, move |s| s.crash(victim));
    sim.run_until(SimTime(60_000_000));
    mttr_from_completions(&m.completions(), &[kill.micros()])
        .first()
        .map(|o| o.mttr_secs())
        .expect("recovered")
}

fn throughput_with(spec: DeploySpec, clients: u32, seed: u64) -> f64 {
    let mut sim = Sim::new(SimConfig { seed, trace: false, ..SimConfig::default() });
    let mut d = build(&mut sim, spec);
    let m = Metrics::new(false);
    for c in 0..clients {
        d.add_client(&mut sim, Workload::create_only(c), m.clone());
    }
    sim.run_for(Duration::from_secs(3));
    sim.run_for(Duration::from_secs(10));
    m.mean_throughput(3, 13)
}

/// Under a closed-loop `clients` fleet: (p99 latency ms, mean mutations per
/// sealed batch — the SSP append amplification of the commit policy).
fn loaded_stats(spec: DeploySpec, clients: u32, seed: u64) -> (f64, f64) {
    let mut sim = Sim::new(SimConfig { seed, trace: false, ..SimConfig::default() });
    let mut d = build(&mut sim, spec);
    let m = Metrics::new(true);
    for c in 0..clients {
        d.add_client(&mut sim, Workload::create_only(c), m.clone());
    }
    sim.run_for(Duration::from_secs(10));
    let batches = d.shared_pool.lock().group(0).map(|g| g.tail_sn()).unwrap_or(0);
    let ops_per_batch = if batches > 0 { m.ok_count() as f64 / batches as f64 } else { 0.0 };
    let mut lat: Vec<u64> = m
        .completions()
        .iter()
        .filter(|c| c.ok && c.issued_us >= 3_000_000)
        .map(|c| c.latency_us())
        .collect();
    lat.sort_unstable();
    if lat.is_empty() {
        return (f64::NAN, ops_per_batch);
    }
    let idx = ((lat.len() as f64 - 1.0) * 0.99).round() as usize;
    (lat[idx.min(lat.len() - 1)] as f64 / 1000.0, ops_per_batch)
}

fn ablate_session_timeout() {
    let mut rows = Vec::new();
    for timeout_s in [1u64, 2, 5, 10] {
        let mut spec = base_spec(3);
        spec.coord.session_timeout = Duration::from_secs(timeout_s);
        spec.timing.heartbeat = Duration::from_millis((timeout_s * 1000 / 3).max(200));
        let mttr = mttr_with(spec, 0xAB1 + timeout_s);
        rows.push(vec![
            format!("{timeout_s}"),
            format!("{mttr:.2}"),
            format!("{:.2}", mttr - timeout_s as f64),
        ]);
    }
    print_table(
        "Ablation 1: session timeout vs MTTR (1A3S)",
        &["timeout (s)", "MTTR (s)", "MTTR − timeout"],
        &rows,
    );
    println!("detection dominates: the post-timeout remainder stays roughly constant.");
}

fn ablate_standby_count() {
    let mut rows = Vec::new();
    for standbys in [1usize, 2, 3, 4] {
        let mttr = mttr_with(base_spec(standbys), 0xAB2 + standbys as u64);
        let tput = throughput_with(base_spec(standbys), 48, 0xAB2);
        rows.push(vec![format!("{standbys}"), format!("{mttr:.2}"), format!("{tput:.0}")]);
    }
    print_table(
        "Ablation 2: hot standbys vs MTTR and create throughput (1 group, 48 clients)",
        &["standbys", "MTTR (s)", "create ops/s"],
        &rows,
    );
    println!("one standby already gives fast failover; extras buy failure tolerance,");
    println!("not speed, and cost a few percent of mutation throughput each.");
}

fn ablate_pool_latency() {
    let mut rows = Vec::new();
    for overhead_us in [500u64, 1_500, 5_000, 15_000] {
        let disk = DiskModel {
            op_overhead: Duration::from_micros(overhead_us),
            bytes_per_sec: 100 * 1024 * 1024,
        };
        let mut spec = base_spec(3);
        spec.pool_disks = Some((disk, DiskModel::image_disk()));
        // Few clients => latency-bound: op latency tracks the pool.
        let tput = throughput_with(spec, 4, 0xAB3 + overhead_us);
        let latency_ms = 4.0 * 1000.0 / tput;
        rows.push(vec![
            format!("{:.1}", overhead_us as f64 / 1000.0),
            format!("{tput:.0}"),
            format!("{latency_ms:.2}"),
        ]);
    }
    print_table(
        "Ablation 3: SSP journal latency vs op latency (4 clients, latency-bound)",
        &["pool fsync (ms)", "ops/s", "mean op latency (ms)"],
        &rows,
    );
    println!("client-visible latency tracks the SSP append — the pool being cheap is");
    println!("what keeps MAMS synchronization overhead negligible (Figure 5/6 claim).");
}

fn ablate_flush_interval() {
    // Fixed flush intervals trade client latency (short wins) against
    // batching efficiency under saturation (long wins) — no single setting
    // is right at both ends, which is exactly the gap the adaptive
    // group-commit controller closes by pacing batches to the observed
    // durability round trip.
    let mut rows = Vec::new();
    // (interval_us, low-load latency ms, loaded p99 ms, ops/batch, ops/s)
    let mut fixed: Vec<(u64, f64, f64, f64, f64)> = Vec::new();
    let measure = |spec: DeploySpec, salt: u64| {
        let few = throughput_with(spec.clone(), 4, 0xAB4 + salt);
        let (p99, opb) = loaded_stats(spec.clone(), 64, 0xAB4 + salt);
        let many = throughput_with(spec, 96, 0xAB4 + salt);
        (4.0 * 1000.0 / few, p99, opb, many)
    };
    for flush_us in [500u64, 2_000, 8_000, 20_000] {
        let mut spec = base_spec(2);
        spec.timing.adaptive_commit = false;
        spec.timing.flush_interval = Duration::from_micros(flush_us);
        let (lat_ms, p99, opb, many) = measure(spec, flush_us);
        fixed.push((flush_us, lat_ms, p99, opb, many));
        rows.push(vec![
            format!("fixed {:.1}", flush_us as f64 / 1000.0),
            format!("{lat_ms:.2}"),
            format!("{p99:.2}"),
            format!("{opb:.1}"),
            format!("{many:.0}"),
        ]);
    }
    let (ad_lat, ad_p99, ad_opb, ad_many) = measure(base_spec(2), 0); // adaptive default
    rows.push(vec![
        "adaptive".into(),
        format!("{ad_lat:.2}"),
        format!("{ad_p99:.2}"),
        format!("{ad_opb:.1}"),
        format!("{ad_many:.0}"),
    ]);
    print_table(
        "Ablation 4: group-commit policy — low-load latency (4 clients), loaded p99 + \
         batching (64), saturated throughput (96)",
        &["flush policy (ms)", "op latency (ms)", "p99@64 (ms)", "ops/batch@64", "ops/s@96"],
        &rows,
    );
    // The crossover: which fixed interval wins flips across the columns —
    // short intervals take the latency columns but shred batching (every
    // batch is an SSP append and a standby sync), long ones batch well but
    // drag latency. Find where each side stops winning against adaptive.
    let last_latency_win =
        fixed.iter().rev().find(|r| r.1 < ad_lat && r.2 <= ad_p99 * 1.05).map(|r| r.0);
    let first_batching_win = fixed.iter().find(|r| r.3 >= ad_opb * 0.95).map(|r| r.0);
    match (last_latency_win, first_batching_win) {
        (Some(a), Some(b)) if a < b => println!(
            "crossover between fixed {:.1} ms and {:.1} ms: below it fixed wins latency \
             but pays {:.1}x the SSP appends, above it batches well but drags the tail.",
            a as f64 / 1000.0,
            b as f64 / 1000.0,
            ad_opb / fixed.iter().find(|r| r.0 == a).map(|r| r.3.max(0.1)).unwrap_or(1.0),
        ),
        _ => println!("no clean crossover in this sweep (disk backpressure self-batches)."),
    }
    println!(
        "adaptive: {ad_lat:.2} ms low-load, {ad_p99:.2} ms p99@64 at {ad_opb:.1} ops/batch, \
         {ad_many:.0} ops/s saturated — near both frontiers with ~1 batch per durability RTT."
    );
}

fn ablate_renewing_image_path() {
    // Recovery time as a function of history length, with and without a
    // checkpointed image. Without checkpoints the junior must replay the
    // whole journal (cost grows with history, and the shared journal can
    // never be compacted); with a recent checkpoint it loads the image and
    // replays only the tail.
    let mut rows = Vec::new();
    for history_s in [30u64, 60, 90] {
        let mut cells = vec![format!("{history_s}")];
        for checkpoint in [true, false] {
            let mut sim = Sim::new(SimConfig { seed: 0xAB5 + history_s, ..SimConfig::default() });
            let mut d = build(&mut sim, base_spec(2));
            let m = Metrics::new(false);
            for c in 0..8 {
                d.add_client(&mut sim, Workload::create_only(c), m.clone());
            }
            let active = d.initial_active(0);
            if checkpoint {
                // Checkpoint shortly before the crash (a realistic cadence).
                let at = SimTime((history_s - 3) * 1_000_000);
                sim.at(at, move |s| s.send_external(active, MdsReq::Checkpoint));
            }
            let standby = d.groups[0].members[1];
            let crash_at = SimTime(history_s * 1_000_000);
            sim.at(crash_at, move |s| s.crash(standby));
            let restart_at = crash_at + Duration::from_secs(2);
            sim.at(restart_at, move |s| s.restart(standby));
            sim.run_until(crash_at + Duration::from_secs(120));
            let catchup = sim
                .trace()
                .first_at_or_after("renew.promoted", restart_at)
                .map(|e| (e.time - restart_at).as_secs_f64());
            cells.push(catchup.map_or("never".into(), |c| format!("{c:.2}")));
        }
        rows.push(cells);
    }
    print_table(
        "Ablation 5: junior recovery time vs history length",
        &["history (s)", "with checkpoint+image (s)", "journal-only replay (s)"],
        &rows,
    );
    println!("journal-only recovery grows with the whole history; the image path is");
    println!("bounded by namespace size plus the journal tail since the checkpoint.");
}

fn main() {
    ablate_session_timeout();
    ablate_standby_count();
    ablate_pool_latency();
    ablate_flush_interval();
    ablate_renewing_image_path();
    save_json("ablations", &serde_json::json!({"note": "see stdout tables"}));
}
