//! Adaptive group-commit controller.
//!
//! The fixed `flush_interval` cadence trades throughput against tail
//! latency statically: a short interval acks single ops quickly but floods
//! the durability pipe with tiny batches under load; a long one amortizes
//! the fan-out but adds up to a full interval of residual wait to every
//! reply. [`GroupCommitPolicy`] replaces the constant with a controller
//! driven by two observed signals:
//!
//! * **arrival rate** (EWMA of admitted ops per µs) — decides whether the
//!   server is idle. An idle server keeps the configured base cadence, so
//!   a lone op is never delayed longer than the fixed baseline would have.
//! * **in-flight ack latency** (EWMA of seal→durable per batch) — paces
//!   flushes under load. One batch per durability round-trip is the group
//!   commit sweet spot: everything that arrives while the previous batch
//!   commits rides the next seal, so batches grow exactly as fast as the
//!   pipe is slow, and the in-flight window stays bounded even when a gray
//!   standby stretches acks by orders of magnitude.
//!
//! The output interval is clamped to `[flush_min, flush_max]`. The policy
//! is pure bookkeeping — no clocks, no I/O — so it is unit-testable in
//! isolation and deterministic under simulation.

use mams_sim::Duration;

/// Smoothing horizon for the arrival-rate EWMA (µs). One tick's weight is
/// `elapsed / RATE_TAU`, so bursts are visible within a few milliseconds
/// while a single stray op decays quickly.
const RATE_TAU_US: f64 = 20_000.0;

/// Fixed smoothing factor for the per-batch ack-latency EWMA.
const ACK_ALPHA: f64 = 0.25;

/// Expected admissions per *base* interval below which the server counts
/// as idle (with an empty backlog).
const IDLE_OPS_PER_BASE: f64 = 0.5;

/// Adaptive flush-cadence controller (see module docs).
#[derive(Debug, Clone)]
pub struct GroupCommitPolicy {
    base_us: f64,
    min_us: f64,
    max_us: f64,
    /// EWMA of the admission rate, in ops per µs.
    rate_per_us: f64,
    /// EWMA of batch durability latency (seal → last ack), in µs.
    ack_us: f64,
}

impl GroupCommitPolicy {
    /// `base` is the fixed cadence the idle server keeps (the legacy
    /// `flush_interval`); `min`/`max` bound the adaptive range.
    pub fn new(base: Duration, min: Duration, max: Duration) -> Self {
        let min_us = (min.micros() as f64).max(1.0);
        let max_us = (max.micros() as f64).max(min_us);
        GroupCommitPolicy {
            base_us: (base.micros() as f64).max(1.0),
            min_us,
            max_us,
            rate_per_us: 0.0,
            // Optimistic start: flush fast until the first ack says
            // otherwise.
            ack_us: min_us,
        }
    }

    /// Record one drain tick: `arrived` ops were admitted over `elapsed`.
    pub fn observe_tick(&mut self, arrived: u64, elapsed: Duration) {
        let us = (elapsed.micros() as f64).max(1.0);
        let alpha = (us / RATE_TAU_US).min(1.0);
        let inst = arrived as f64 / us;
        self.rate_per_us += alpha * (inst - self.rate_per_us);
    }

    /// Record one batch reaching durability `latency` after its seal.
    pub fn observe_ack(&mut self, latency: Duration) {
        let us = (latency.micros() as f64).max(1.0);
        self.ack_us += ACK_ALPHA * (us - self.ack_us);
    }

    /// The interval until the next drain-and-flush tick. `backlog` is the
    /// number of ops still queued after the current drain.
    pub fn next_interval(&self, backlog: usize) -> Duration {
        if backlog == 0 && self.rate_per_us * self.base_us < IDLE_OPS_PER_BASE {
            // Idle: keep the fixed cadence — no extra timer traffic, and a
            // lone op never waits longer than under the fixed policy.
            return Duration::from_micros(self.base_us as u64);
        }
        Duration::from_micros(self.ack_us.clamp(self.min_us, self.max_us) as u64)
    }

    /// Observed admission rate in ops per second (diagnostics).
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_us * 1_000_000.0
    }

    /// Observed ack latency in µs (diagnostics).
    pub fn ack_latency_us(&self) -> f64 {
        self.ack_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> GroupCommitPolicy {
        GroupCommitPolicy::new(
            Duration::from_millis(2),
            Duration::from_micros(250),
            Duration::from_millis(8),
        )
    }

    #[test]
    fn idle_server_keeps_the_base_cadence() {
        let mut p = policy();
        for _ in 0..100 {
            p.observe_tick(0, Duration::from_millis(2));
        }
        assert_eq!(p.next_interval(0), Duration::from_millis(2));
    }

    #[test]
    fn loaded_fast_pipe_flushes_at_the_floor() {
        let mut p = policy();
        // Sustained traffic, acks faster than the floor.
        for _ in 0..200 {
            p.observe_tick(40, Duration::from_millis(2));
            p.observe_ack(Duration::from_micros(100));
        }
        assert_eq!(p.next_interval(10), Duration::from_micros(250));
    }

    #[test]
    fn interval_tracks_the_ack_round_trip_under_load() {
        let mut p = policy();
        for _ in 0..200 {
            p.observe_tick(40, Duration::from_millis(2));
            p.observe_ack(Duration::from_micros(900));
        }
        let us = p.next_interval(10).micros();
        assert!((800..=1000).contains(&us), "interval {us}µs should track the ~900µs ack EWMA");
    }

    #[test]
    fn slow_acks_are_clamped_at_the_ceiling() {
        let mut p = policy();
        for _ in 0..50 {
            p.observe_tick(40, Duration::from_millis(2));
            p.observe_ack(Duration::from_millis(400)); // gray standby
        }
        assert_eq!(p.next_interval(100), Duration::from_millis(8));
    }

    #[test]
    fn interval_is_monotone_in_ack_latency() {
        let mut prev = Duration::ZERO;
        for ack_us in [100u64, 400, 900, 2000, 5000, 20_000] {
            let mut p = policy();
            for _ in 0..100 {
                p.observe_tick(40, Duration::from_millis(2));
                p.observe_ack(Duration::from_micros(ack_us));
            }
            let i = p.next_interval(5);
            assert!(i >= prev, "ack {ack_us}µs -> {i:?} must not shrink below {prev:?}");
            prev = i;
        }
    }

    #[test]
    fn backlog_forces_the_busy_path_even_at_low_rate() {
        let mut p = policy();
        for _ in 0..100 {
            p.observe_tick(0, Duration::from_millis(2));
            p.observe_ack(Duration::from_micros(300));
        }
        // Queued work means the next tick comes at the ack pace, not the
        // idle cadence.
        assert!(p.next_interval(3) < Duration::from_millis(2));
    }

    #[test]
    fn a_light_closed_loop_client_gets_the_fast_cadence() {
        let mut p = policy();
        // ~1 op/ms: far from saturation, but well above the idle threshold.
        for _ in 0..200 {
            p.observe_tick(2, Duration::from_millis(2));
            p.observe_ack(Duration::from_micros(120));
        }
        assert_eq!(p.next_interval(0), Duration::from_micros(250));
    }

    #[test]
    fn rate_ewma_decays_back_to_idle() {
        let mut p = policy();
        for _ in 0..50 {
            p.observe_tick(40, Duration::from_millis(2));
        }
        assert!(p.rate_per_sec() > 10_000.0);
        for _ in 0..200 {
            p.observe_tick(0, Duration::from_millis(2));
        }
        assert_eq!(p.next_interval(0), Duration::from_millis(2));
    }
}
