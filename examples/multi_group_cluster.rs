//! A multi-group deployment (MAMS-3A6S): three actives partition the
//! namespace by hashing, each protected by two hot standbys. Shows which
//! operations scale with actives and which are distributed transactions.
//!
//! ```sh
//! cargo run --release --example multi_group_cluster
//! ```

use mams::cluster::deploy::{build, DeploySpec};
use mams::cluster::metrics::Metrics;
use mams::cluster::workload::Workload;
use mams::namespace::Partitioner;
use mams::sim::{Duration, Sim, SimConfig};

fn throughput(make: impl Fn(u32) -> Workload, groups: u32, standbys_total: u32) -> f64 {
    let mut sim = Sim::new(SimConfig { trace: false, ..SimConfig::default() });
    let mut cluster = build(&mut sim, DeploySpec::mams(groups, standbys_total));
    let metrics = Metrics::new(false);
    for c in 0..48 {
        cluster.add_client(&mut sim, make(c), metrics.clone());
    }
    sim.run_for(Duration::from_secs(5)); // warm up
    let from = 5;
    sim.run_for(Duration::from_secs(10));
    metrics.mean_throughput(from, 15)
}

fn main() {
    println!("Hash partitioning: each path is owned by exactly one replica group.");
    let p = Partitioner::new(3);
    for path in ["/logs/app-1", "/logs/app-2", "/data/users.db", "/tmp/scratch"] {
        println!("  {path:<18} -> group {}", p.owner(path));
    }

    println!("\nThroughput, 1 active vs 3 actives (48 clients):");
    for (label, make) in [
        ("create      ", Workload::create_only as fn(u32) -> Workload),
        ("mkdir       ", Workload::mkdir_only as fn(u32) -> Workload),
    ] {
        let one = throughput(make, 1, 2);
        let three = throughput(make, 3, 6);
        println!(
            "  {label} 1A2S: {one:>8.0} ops/s   3A6S: {three:>8.0} ops/s   ({:.2}x)",
            three / one
        );
    }
    println!("\ncreate scales with actives (partitioned); mkdir is a distributed");
    println!("transaction that must update every group's directory skeleton, so it");
    println!("cannot scale — exactly the Figure 5 result.");
}
