//! Figure 6: mixed-operation throughput (create / getfileinfo / mkdir)
//! across reliability mechanisms: vanilla HDFS, BackupNode, Hadoop
//! AvatarNode, Hadoop HA (QJM), and CFS with MAMS-1A3S.
//!
//! Expected shape (paper): every reliable mechanism costs throughput
//! relative to HDFS; BackupNode (asynchronous, no consistency guarantee)
//! costs least; CFS with three standbys still beats AvatarNode and
//! Hadoop HA thanks to the SSP's cheap journal synchronization.

use mams_baselines::{avatar, backupnode, boomfs, hadoop_ha, hdfs};
use mams_bench::{print_table, save_json};
use mams_cluster::deploy::{build, DeploySpec};
use mams_cluster::metrics::Metrics;
use mams_cluster::workload::Workload;
use mams_cluster::{ClientConfig, FsClient};
use mams_coord::{CoordConfig, CoordServer};
use mams_namespace::Partitioner;
use mams_sim::{DetRng, Duration, NodeId, Sim, SimConfig};

const CLIENTS: u32 = 48;
const WARMUP: Duration = Duration::from_secs(5);
const MEASURE: Duration = Duration::from_secs(10);

fn add_clients(sim: &mut Sim, coord: NodeId, start_delay: Duration) -> std::sync::Arc<Metrics> {
    let metrics = Metrics::new(false);
    for c in 0..CLIENTS {
        let mut cfg = ClientConfig::new(coord, Partitioner::new(1));
        cfg.start_delay = start_delay;
        sim.add_node(
            format!("client-{c}"),
            Box::new(FsClient::new(
                cfg,
                Workload::mixed(c),
                metrics.clone(),
                DetRng::seed_from_u64(0xF166 + c as u64),
            )),
        );
    }
    metrics
}

fn measure(sim: &mut Sim, metrics: &Metrics) -> f64 {
    sim.run_for(WARMUP);
    let from = (sim.now().micros() / 1_000_000) as usize;
    sim.run_for(MEASURE);
    let to = (sim.now().micros() / 1_000_000) as usize;
    metrics.mean_throughput(from, to)
}

fn run_system(name: &str) -> f64 {
    let mut sim = Sim::new(SimConfig { seed: 0xF166, trace: false, ..SimConfig::default() });
    if name == "CFS (MAMS-1A3S)" {
        let mut d = build(
            &mut sim,
            DeploySpec { groups: 1, standbys_per_group: 3, ..DeploySpec::default() },
        );
        let metrics = Metrics::new(false);
        for c in 0..CLIENTS {
            d.add_client(&mut sim, Workload::mixed(c), metrics.clone());
        }
        return measure(&mut sim, &metrics);
    }
    let coord = sim.add_node("coord", Box::new(CoordServer::new(CoordConfig::default())));
    let start_delay = match name {
        "HDFS" => {
            hdfs::build(&mut sim, coord, hdfs::HdfsSpec::default());
            Duration::from_millis(500)
        }
        "BackupNode" => {
            backupnode::build(&mut sim, coord, backupnode::BackupNodeSpec::default());
            Duration::from_millis(500)
        }
        "AvatarNode" => {
            avatar::build(&mut sim, coord, avatar::AvatarSpec::default());
            Duration::from_millis(500)
        }
        "Hadoop HA" => {
            hadoop_ha::build(&mut sim, coord, hadoop_ha::HadoopHaSpec::default());
            Duration::from_millis(500)
        }
        "Boom-FS" => {
            boomfs::build(&mut sim, coord, boomfs::BoomFsSpec::default());
            Duration::from_secs(10) // let the RSM elect first
        }
        other => panic!("unknown system {other}"),
    };
    let metrics = add_clients(&mut sim, coord, start_delay);
    if name == "Boom-FS" {
        sim.run_for(Duration::from_secs(10));
    }
    measure(&mut sim, &metrics)
}

fn main() {
    let systems = ["HDFS", "BackupNode", "CFS (MAMS-1A3S)", "AvatarNode", "Hadoop HA", "Boom-FS"];
    let mut rows = Vec::new();
    let mut json = serde_json::Map::new();
    let mut hdfs_tput = 0.0;
    for sys in systems {
        let tput = run_system(sys);
        if sys == "HDFS" {
            hdfs_tput = tput;
        }
        let rel = if hdfs_tput > 0.0 { tput / hdfs_tput * 100.0 } else { 100.0 };
        rows.push(vec![sys.to_string(), format!("{tput:.0}"), format!("{rel:.1}%")]);
        json.insert(sys.to_string(), serde_json::json!(tput));
    }
    print_table(
        "Figure 6: mixed create/getfileinfo/mkdir throughput by mechanism",
        &["system", "ops/sec", "vs HDFS"],
        &rows,
    );
    println!("\nShape checks (paper): HDFS > BackupNode > CFS-1A3S > AvatarNode > Hadoop HA;");
    println!("Boom-FS pays a consensus round per mutation (extra column, Section II).");
    save_json("fig6_mechanism_compare", &serde_json::Value::Object(json));
}
