//! The namespace tree and its metadata operations.
//!
//! Two structures make the op hot path allocation-light:
//!
//! * an **interned component table**: directory-child names are `Arc<str>`
//!   handles deduplicated tree-wide, so the repeated components of a large
//!   namespace (`part-00000`, `data`, …) share one allocation apiece;
//! * a **parent-directory resolution cache**: directory path → inode id,
//!   so `create`/`getfileinfo`/`delete` against a warm directory cost one
//!   map probe plus one child lookup instead of a walk from the root.
//!
//! Cache invariant: an entry maps a path to the id of a directory that is
//! *currently* at that path. Inode ids are never reused, directories never
//! become files, and the only operations that relocate or remove a
//! directory are `delete` and `rename` — which invalidate the entry and
//! (for directories) its whole subtree. Everything else leaves entries
//! valid, so a cache hit can never disagree with a from-root walk.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use mams_journal::{Apply, Txn, TxnId};

use crate::inode::{FileInfo, Inode, InodeId, ROOT_ID};
use crate::path::{self, PathError};

/// Metadata operation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NsError {
    Invalid(PathError),
    NotFound(String),
    AlreadyExists(String),
    ParentNotFound(String),
    ParentNotDirectory(String),
    NotEmpty(String),
    IsDirectory(String),
    IsFile(String),
    FileSealed(String),
    RenameIntoSelf { src: String, dst: String },
    RootImmutable,
}

impl std::fmt::Display for NsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NsError::Invalid(e) => write!(f, "{e}"),
            NsError::NotFound(p) => write!(f, "{p}: no such file or directory"),
            NsError::AlreadyExists(p) => write!(f, "{p}: already exists"),
            NsError::ParentNotFound(p) => write!(f, "{p}: parent does not exist"),
            NsError::ParentNotDirectory(p) => write!(f, "{p}: parent is not a directory"),
            NsError::NotEmpty(p) => write!(f, "{p}: directory not empty"),
            NsError::IsDirectory(p) => write!(f, "{p}: is a directory"),
            NsError::IsFile(p) => write!(f, "{p}: is a file"),
            NsError::FileSealed(p) => write!(f, "{p}: file is sealed"),
            NsError::RenameIntoSelf { src, dst } => {
                write!(f, "cannot rename {src} into its own subtree {dst}")
            }
            NsError::RootImmutable => write!(f, "the root directory cannot be modified"),
        }
    }
}

impl std::error::Error for NsError {}

impl From<PathError> for NsError {
    fn from(e: PathError) -> Self {
        NsError::Invalid(e)
    }
}

/// An in-memory namespace: the state a metadata server manages for its
/// partition.
#[derive(Debug, Clone)]
pub struct NamespaceTree {
    pub(crate) inodes: HashMap<InodeId, Inode>,
    pub(crate) next_id: InodeId,
    num_files: u64,
    num_dirs: u64,
    /// Journal replays that failed to apply — any nonzero value indicates a
    /// protocol bug (journaled operations must always replay cleanly).
    divergences: u64,
    /// Interned child-name table (see module docs). Bounded: cleared when
    /// full; live names stay alive through the directories that hold them
    /// and re-intern on next use.
    names: HashSet<Arc<str>>,
    /// Directory path → inode id fast-path cache (see module docs for the
    /// invalidation invariant). Bounded: cleared when full.
    parent_cache: HashMap<Box<str>, InodeId>,
}

/// Intern-table bound; ~64k distinct component names before a reset.
const NAME_TABLE_CAP: usize = 1 << 16;
/// Resolution-cache bound (directories, not files).
const PARENT_CACHE_CAP: usize = 1 << 14;

impl Default for NamespaceTree {
    fn default() -> Self {
        Self::new()
    }
}

impl NamespaceTree {
    /// A namespace containing only the root directory.
    pub fn new() -> Self {
        let mut inodes = HashMap::new();
        inodes.insert(ROOT_ID, Inode::new_dir());
        NamespaceTree {
            inodes,
            next_id: 1,
            num_files: 0,
            num_dirs: 0,
            divergences: 0,
            names: HashSet::new(),
            parent_cache: HashMap::new(),
        }
    }

    /// Number of files.
    pub fn num_files(&self) -> u64 {
        self.num_files
    }

    /// Number of directories, excluding the root.
    pub fn num_dirs(&self) -> u64 {
        self.num_dirs
    }

    /// Replay divergence count (must stay 0 in a correct deployment).
    pub fn divergences(&self) -> u64 {
        self.divergences
    }

    /// Assemble a tree from raw parts (the sharded namespace's conversion
    /// path). The caller guarantees `inodes` is a well-formed tree rooted at
    /// `ROOT_ID`, `next_id` is above every id in it, and the counts match.
    pub(crate) fn from_parts(
        inodes: HashMap<InodeId, Inode>,
        next_id: InodeId,
        num_files: u64,
        num_dirs: u64,
    ) -> Self {
        debug_assert!(inodes.contains_key(&ROOT_ID));
        NamespaceTree {
            inodes,
            next_id,
            num_files,
            num_dirs,
            divergences: 0,
            names: HashSet::new(),
            parent_cache: HashMap::new(),
        }
    }

    /// Decompose into `(inodes, next_id, num_files, num_dirs)` — the sharded
    /// namespace consumes a decoded image tree through this without cloning
    /// any inode.
    pub(crate) fn into_parts(self) -> (HashMap<InodeId, Inode>, InodeId, u64, u64) {
        (self.inodes, self.next_id, self.num_files, self.num_dirs)
    }

    fn alloc(&mut self, inode: Inode) -> InodeId {
        let id = self.next_id;
        self.next_id += 1;
        self.inodes.insert(id, inode);
        id
    }

    /// One shared handle per distinct component name, tree-wide.
    fn intern(&mut self, name: &str) -> Arc<str> {
        if let Some(n) = self.names.get(name) {
            return n.clone();
        }
        if self.names.len() >= NAME_TABLE_CAP {
            self.names.clear();
        }
        let n: Arc<str> = Arc::from(name);
        self.names.insert(n.clone());
        n
    }

    /// Attach a fully-formed inode directly under `parent` with the given
    /// component name — the image decoder's single-pass path: no from-root
    /// resolution, no path strings. The caller guarantees `name` is a valid
    /// component; duplicate names and non-directory parents are rejected
    /// (they indicate a corrupt image).
    pub(crate) fn attach_child(
        &mut self,
        parent: InodeId,
        name: &str,
        inode: Inode,
    ) -> Result<InodeId, NsError> {
        match self.inodes.get(&parent) {
            Some(Inode::Directory { .. }) => {}
            Some(Inode::File { .. }) => return Err(NsError::ParentNotDirectory(name.to_string())),
            None => return Err(NsError::ParentNotFound(name.to_string())),
        }
        let is_dir = inode.is_dir();
        let name = self.intern(name);
        let id = self.alloc(inode);
        let duplicate = match self.inodes.get_mut(&parent).expect("parent checked above") {
            Inode::Directory { children, .. } => {
                // Single tree search via the entry API (this is the image
                // decoder's per-entry hot path).
                match children.entry(name) {
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert(id);
                        None
                    }
                    std::collections::btree_map::Entry::Occupied(o) => Some(o.key().to_string()),
                }
            }
            Inode::File { .. } => unreachable!("parent kind checked above"),
        };
        if let Some(name) = duplicate {
            self.inodes.remove(&id);
            return Err(NsError::AlreadyExists(name));
        }
        if is_dir {
            self.num_dirs += 1;
        } else {
            self.num_files += 1;
        }
        Ok(id)
    }

    /// Pre-size the inode table for `extra` upcoming inserts (the image
    /// decoder calls this with an estimate from the announced transfer
    /// size, avoiding repeated rehashing while millions of entries load).
    pub(crate) fn reserve_inodes(&mut self, extra: usize) {
        self.inodes.reserve(extra);
    }

    /// Record that the directory at `p` has inode `id` (mutation paths call
    /// this after a successful resolve, warming the cache for the reads).
    fn cache_dir(&mut self, p: &str, id: InodeId) {
        debug_assert!(self.inodes.get(&id).is_some_and(Inode::is_dir));
        if self.parent_cache.contains_key(p) {
            return;
        }
        if self.parent_cache.len() >= PARENT_CACHE_CAP {
            self.parent_cache.clear();
        }
        self.parent_cache.insert(Box::from(p), id);
    }

    /// Drop the cache entry for `p` — and, when `p` was a directory, every
    /// entry beneath it (the subtree moved or disappeared).
    fn invalidate_cached(&mut self, p: &str, was_dir: bool) {
        if was_dir {
            self.parent_cache.retain(|k, _| !(k.as_ref() == p || path::is_strict_descendant(k, p)));
        } else {
            self.parent_cache.remove(p);
        }
    }

    /// Resolve a validated path to an inode id.
    ///
    /// Fast path: `p` itself, or its parent directory, is in the resolution
    /// cache — one probe (plus one child lookup) instead of a component
    /// walk. Falls back to the from-root walk on a cold cache.
    fn resolve(&self, p: &str) -> Option<InodeId> {
        if p == "/" {
            return Some(ROOT_ID);
        }
        if let Some(&id) = self.parent_cache.get(p) {
            return Some(id);
        }
        if let Some((dir, name)) = path::split(p) {
            if let Some(&pid) = self.parent_cache.get(dir) {
                return match self.inodes.get(&pid) {
                    Some(Inode::Directory { children, .. }) => children.get(name).copied(),
                    _ => None,
                };
            }
        }
        self.resolve_walk(p)
    }

    /// The from-root component walk.
    fn resolve_walk(&self, p: &str) -> Option<InodeId> {
        let mut cur = ROOT_ID;
        for comp in path::components(p) {
            match self.inodes.get(&cur)? {
                Inode::Directory { children, .. } => cur = *children.get(comp)?,
                Inode::File { .. } => return None,
            }
        }
        Some(cur)
    }

    /// Resolve a path to its inode id (fast path; test/bench hook).
    pub fn resolve_path(&self, p: &str) -> Option<InodeId> {
        path::validate(p).ok()?;
        self.resolve(p)
    }

    /// Resolve by walking from the root, ignoring the cache (test/bench
    /// hook: the oracle the fast path must agree with).
    pub fn resolve_path_uncached(&self, p: &str) -> Option<InodeId> {
        path::validate(p).ok()?;
        self.resolve_walk(p)
    }

    /// Whether a path exists.
    pub fn exists(&self, p: &str) -> bool {
        path::validate(p).is_ok() && self.resolve(p).is_some()
    }

    /// Resolve the parent directory of `p`, classifying failures.
    fn resolve_parent(&self, p: &str) -> Result<InodeId, NsError> {
        let parent = path::parent(p).ok_or(NsError::RootImmutable)?;
        match self.resolve(parent) {
            Some(id) if self.inodes[&id].is_dir() => Ok(id),
            Some(_) => Err(NsError::ParentNotDirectory(p.to_string())),
            None => {
                // Distinguish "parent missing" from "an ancestor is a file".
                if self.parent_chain_has_file(parent) {
                    Err(NsError::ParentNotDirectory(p.to_string()))
                } else {
                    Err(NsError::ParentNotFound(p.to_string()))
                }
            }
        }
    }

    fn parent_chain_has_file(&self, p: &str) -> bool {
        let mut cur = ROOT_ID;
        for comp in path::components(p) {
            match &self.inodes[&cur] {
                Inode::Directory { children, .. } => match children.get(comp) {
                    Some(id) => cur = *id,
                    None => return false,
                },
                Inode::File { .. } => return true,
            }
        }
        self.inodes[&cur].is_file()
    }

    /// `create`: make an empty file.
    pub fn create(&mut self, p: &str, replication: u8) -> Result<FileInfo, NsError> {
        path::validate(p)?;
        let parent_id = self.resolve_parent(p)?;
        let (dir, name) = path::split(p).expect("non-root validated path");
        if let Inode::Directory { children, .. } = &self.inodes[&parent_id] {
            if children.contains_key(name) {
                return Err(NsError::AlreadyExists(p.to_string()));
            }
        }
        let name = self.intern(name);
        let id = self.alloc(Inode::new_file(replication));
        match self.inodes.get_mut(&parent_id).expect("parent exists") {
            Inode::Directory { children, .. } => {
                children.insert(name, id);
            }
            Inode::File { .. } => unreachable!("resolve_parent checked kind"),
        }
        self.cache_dir(dir, parent_id);
        self.num_files += 1;
        self.info_of(p, id)
    }

    /// `mkdir`: make a directory (parent must exist).
    pub fn mkdir(&mut self, p: &str) -> Result<(), NsError> {
        path::validate(p)?;
        let parent_id = self.resolve_parent(p)?;
        let (dir, name) = path::split(p).expect("non-root validated path");
        if let Inode::Directory { children, .. } = &self.inodes[&parent_id] {
            if children.contains_key(name) {
                return Err(NsError::AlreadyExists(p.to_string()));
            }
        }
        let name = self.intern(name);
        let id = self.alloc(Inode::new_dir());
        match self.inodes.get_mut(&parent_id).expect("parent exists") {
            Inode::Directory { children, .. } => {
                children.insert(name, id);
            }
            Inode::File { .. } => unreachable!("resolve_parent checked kind"),
        }
        self.cache_dir(dir, parent_id);
        self.cache_dir(p, id);
        self.num_dirs += 1;
        Ok(())
    }

    /// `mkdir -p`: create all missing ancestors. Ok if the directory exists.
    pub fn mkdir_p(&mut self, p: &str) -> Result<(), NsError> {
        path::validate(p)?;
        if p == "/" {
            return Ok(());
        }
        // Ancestors are borrowed prefix slices of `p` — no per-level String.
        for prefix in path::prefixes(p) {
            match self.mkdir(prefix) {
                Ok(()) => {}
                Err(NsError::AlreadyExists(_)) => {
                    if let Some(id) = self.resolve(prefix) {
                        if self.inodes[&id].is_file() {
                            return Err(NsError::IsFile(prefix.to_string()));
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// `delete`: remove a file, or a directory (recursively when asked).
    /// Returns `(files_removed, dirs_removed)`.
    pub fn delete(&mut self, p: &str, recursive: bool) -> Result<(u64, u64), NsError> {
        path::validate(p)?;
        if p == "/" {
            return Err(NsError::RootImmutable);
        }
        let id = self.resolve(p).ok_or_else(|| NsError::NotFound(p.to_string()))?;
        if let Inode::Directory { children, .. } = &self.inodes[&id] {
            if !children.is_empty() && !recursive {
                return Err(NsError::NotEmpty(p.to_string()));
            }
        }
        let parent_id = self.resolve_parent(p)?;
        let (dir, name) = path::split(p).expect("non-root validated path");
        let was_dir = self.inodes[&id].is_dir();
        match self.inodes.get_mut(&parent_id).expect("parent exists") {
            Inode::Directory { children, .. } => {
                children.remove(name);
            }
            Inode::File { .. } => unreachable!("resolve_parent checked kind"),
        }
        let (files, dirs) = self.drop_subtree(id);
        self.num_files -= files;
        self.num_dirs -= dirs;
        self.invalidate_cached(p, was_dir);
        self.cache_dir(dir, parent_id);
        Ok((files, dirs))
    }

    fn drop_subtree(&mut self, id: InodeId) -> (u64, u64) {
        let mut files = 0;
        let mut dirs = 0;
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            match self.inodes.remove(&cur).expect("subtree inode present") {
                Inode::File { .. } => files += 1,
                Inode::Directory { children, .. } => {
                    dirs += 1;
                    stack.extend(children.values().copied());
                }
            }
        }
        (files, dirs)
    }

    /// `rename`: move `src` to `dst` (which must not exist).
    pub fn rename(&mut self, src: &str, dst: &str) -> Result<(), NsError> {
        path::validate(src)?;
        path::validate(dst)?;
        if src == "/" || dst == "/" {
            return Err(NsError::RootImmutable);
        }
        if src == dst {
            return Err(NsError::AlreadyExists(dst.to_string()));
        }
        if path::is_strict_descendant(dst, src) {
            return Err(NsError::RenameIntoSelf { src: src.to_string(), dst: dst.to_string() });
        }
        let src_id = self.resolve(src).ok_or_else(|| NsError::NotFound(src.to_string()))?;
        if self.resolve(dst).is_some() {
            return Err(NsError::AlreadyExists(dst.to_string()));
        }
        let dst_parent = self.resolve_parent(dst)?;
        let src_parent = self.resolve_parent(src)?;
        let (src_dir, src_name) = path::split(src).expect("non-root");
        let (dst_dir, dst_name) = path::split(dst).expect("non-root");
        let src_is_dir = self.inodes[&src_id].is_dir();
        match self.inodes.get_mut(&src_parent).expect("src parent") {
            Inode::Directory { children, .. } => {
                children.remove(src_name);
            }
            Inode::File { .. } => unreachable!(),
        }
        let dst_name = self.intern(dst_name);
        match self.inodes.get_mut(&dst_parent).expect("dst parent") {
            Inode::Directory { children, .. } => {
                children.insert(dst_name, src_id);
            }
            Inode::File { .. } => unreachable!(),
        }
        // The subtree rooted at `src` moved: every cached path at or under
        // `src` now points somewhere else (or nowhere).
        self.invalidate_cached(src, src_is_dir);
        self.cache_dir(src_dir, src_parent);
        self.cache_dir(dst_dir, dst_parent);
        if src_is_dir {
            self.cache_dir(dst, src_id);
        }
        Ok(())
    }

    /// `getfileinfo`: read-only metadata lookup.
    pub fn getfileinfo(&self, p: &str) -> Result<FileInfo, NsError> {
        path::validate(p)?;
        let id = self.resolve(p).ok_or_else(|| NsError::NotFound(p.to_string()))?;
        self.info_of(p, id)
    }

    fn info_of(&self, p: &str, id: InodeId) -> Result<FileInfo, NsError> {
        Ok(match &self.inodes[&id] {
            Inode::Directory { children, perm } => FileInfo {
                path: p.to_string(),
                is_dir: true,
                blocks: Vec::new(),
                replication: 0,
                sealed: false,
                perm: *perm,
                child_count: children.len(),
            },
            Inode::File { blocks, replication, sealed, perm } => FileInfo {
                path: p.to_string(),
                is_dir: false,
                blocks: blocks.clone(),
                replication: *replication,
                sealed: *sealed,
                perm: *perm,
                child_count: 0,
            },
        })
    }

    /// List child names of a directory (sorted).
    pub fn list(&self, p: &str) -> Result<Vec<String>, NsError> {
        path::validate(p)?;
        let id = self.resolve(p).ok_or_else(|| NsError::NotFound(p.to_string()))?;
        match &self.inodes[&id] {
            Inode::Directory { children, .. } => {
                Ok(children.keys().map(|k| k.to_string()).collect())
            }
            Inode::File { .. } => Err(NsError::IsFile(p.to_string())),
        }
    }

    /// Append a block to an unsealed file.
    pub fn add_block(&mut self, p: &str, block_id: u64) -> Result<(), NsError> {
        path::validate(p)?;
        let id = self.resolve(p).ok_or_else(|| NsError::NotFound(p.to_string()))?;
        match self.inodes.get_mut(&id).expect("resolved") {
            Inode::File { blocks, sealed, .. } => {
                if *sealed {
                    return Err(NsError::FileSealed(p.to_string()));
                }
                blocks.push(block_id);
                Ok(())
            }
            Inode::Directory { .. } => Err(NsError::IsDirectory(p.to_string())),
        }
    }

    /// Seal a file. Idempotent.
    pub fn close_file(&mut self, p: &str) -> Result<(), NsError> {
        path::validate(p)?;
        let id = self.resolve(p).ok_or_else(|| NsError::NotFound(p.to_string()))?;
        match self.inodes.get_mut(&id).expect("resolved") {
            Inode::File { sealed, .. } => {
                *sealed = true;
                Ok(())
            }
            Inode::Directory { .. } => Err(NsError::IsDirectory(p.to_string())),
        }
    }

    /// Change permission bits.
    pub fn set_perm(&mut self, p: &str, perm: u16) -> Result<(), NsError> {
        path::validate(p)?;
        let id = self.resolve(p).ok_or_else(|| NsError::NotFound(p.to_string()))?;
        self.inodes.get_mut(&id).expect("resolved").set_perm(perm);
        Ok(())
    }

    /// Apply a journalled transaction. Journaled transactions were validated
    /// by the active before logging, so failures indicate replica
    /// divergence; they are counted rather than silently swallowed.
    pub fn apply(&mut self, txn: &Txn) -> Result<(), NsError> {
        match txn {
            Txn::Create { path, replication } => self.create(path, *replication).map(|_| ()),
            Txn::Mkdir { path } => self.mkdir(path),
            Txn::Delete { path, recursive } => self.delete(path, *recursive).map(|_| ()),
            Txn::Rename { src, dst } => self.rename(src, dst),
            Txn::AddBlock { path, block_id, .. } => self.add_block(path, *block_id),
            Txn::CloseFile { path } => self.close_file(path),
            Txn::SetPerm { path, perm } => self.set_perm(path, *perm),
        }
    }

    /// Deterministic structural fingerprint of the whole tree (used by tests
    /// and the renewing protocol's final verification).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_0000_01b3);
            }
        };
        // DFS in sorted-child order, hashing path-shape and attributes.
        let mut stack: Vec<(InodeId, u32)> = vec![(ROOT_ID, 0)];
        while let Some((id, depth)) = stack.pop() {
            mix(&depth.to_le_bytes());
            match &self.inodes[&id] {
                Inode::Directory { children, perm } => {
                    mix(b"D");
                    mix(&perm.to_le_bytes());
                    for (name, child) in children.iter().rev() {
                        mix(name.as_bytes());
                        stack.push((*child, depth + 1));
                    }
                }
                Inode::File { blocks, replication, sealed, perm } => {
                    mix(&[b'F', *replication, *sealed as u8]);
                    mix(&perm.to_le_bytes());
                    for b in blocks {
                        mix(&b.to_le_bytes());
                    }
                }
            }
        }
        h
    }
}

impl Apply for NamespaceTree {
    fn apply_txn(&mut self, _txid: TxnId, txn: &Txn) {
        if self.apply(txn).is_err() {
            self.divergences += 1;
            debug_assert!(false, "journal replay diverged on {txn:?}");
        }
    }
}

/// Resolution-skipping journal replay fast path.
///
/// Journalled records were fully validated by the active before they were
/// logged, so a replica replaying them can skip `path::validate` and most
/// of the from-root resolution work that dominates naive `apply`:
///
/// * the **last-resolved parent directory** `(path, id)` is cached across
///   records — journals have heavy directory locality, so a run of creates
///   into one directory costs one resolve total;
/// * the **last-touched file** is cached the same way, making the
///   ubiquitous `Create f → AddBlock f → CloseFile f` sequence two map
///   probes instead of two more resolutions;
/// * creates and mkdirs attach via [`NamespaceTree::attach_child`] — one
///   B-tree entry probe, no duplicate pre-check, and none of the
///   [`FileInfo`] allocation (`path` string + `blocks` clone) that the
///   client-facing `create` pays for its response.
///
/// Soundness of the caches rests on the same invariant as the tree's own
/// resolution cache (see module docs): inode ids are never reused,
/// directories never become files, and only `Delete`/`Rename` relocate or
/// remove inodes — the session conservatively drops both caches on those
/// records (structural ops are rare in journals). The caches also go stale
/// if the tree is mutated *outside* the session (direct ops on an active,
/// or wholesale replacement by an image load): callers must [`reset`] at
/// those boundaries before replaying again.
///
/// Errors are returned, not panicked on, so callers keep counting replay
/// divergences exactly as with naive `apply`. Error *kinds* can differ
/// from naive apply on malformed records (the session does only basename
/// sanity checks), but success/failure agrees: a record naive apply
/// accepts is applied identically, and a record it rejects is rejected.
///
/// [`reset`]: ReplaySession::reset
#[derive(Debug, Default)]
pub struct ReplaySession {
    /// Cached `(path, id)` of the last-resolved parent directory.
    dir: String,
    dir_id: InodeId,
    dir_valid: bool,
    /// Cached `(path, id)` of the last-resolved non-parent node (usually a
    /// file mid `Create/AddBlock/CloseFile` run).
    node: String,
    node_id: InodeId,
    node_valid: bool,
}

impl ReplaySession {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop the cached handles. Call whenever the tree may have changed
    /// hands since the last `apply` through this session: after an image
    /// load replaces the tree, after `reset_replica_state`, or after a
    /// stint as active mutating the namespace directly.
    pub fn reset(&mut self) {
        self.dir_valid = false;
        self.node_valid = false;
    }

    /// Apply one journalled record to `tree` via the fast path.
    pub fn apply(&mut self, tree: &mut NamespaceTree, txn: &Txn) -> Result<(), NsError> {
        match txn {
            Txn::Create { path, replication } => {
                let (pid, name) = self.parent_of(tree, path)?;
                let id = tree.attach_child(pid, name, Inode::new_file(*replication))?;
                self.remember_node(path, id);
                Ok(())
            }
            Txn::Mkdir { path } => {
                let (pid, name) = self.parent_of(tree, path)?;
                let id = tree.attach_child(pid, name, Inode::new_dir())?;
                // Subsequent records usually populate the new directory.
                self.remember_dir(path, id);
                Ok(())
            }
            Txn::Delete { path, recursive } => {
                self.reset();
                tree.delete(path, *recursive).map(|_| ())
            }
            Txn::Rename { src, dst } => {
                self.reset();
                tree.rename(src, dst)
            }
            Txn::AddBlock { path, block_id, .. } => {
                let id = self.resolve_node(tree, path)?;
                match tree.inodes.get_mut(&id).expect("cached/resolved inode exists") {
                    Inode::File { blocks, sealed, .. } => {
                        if *sealed {
                            return Err(NsError::FileSealed(path.clone()));
                        }
                        blocks.push(*block_id);
                        Ok(())
                    }
                    Inode::Directory { .. } => Err(NsError::IsDirectory(path.clone())),
                }
            }
            Txn::CloseFile { path } => {
                let id = self.resolve_node(tree, path)?;
                match tree.inodes.get_mut(&id).expect("cached/resolved inode exists") {
                    Inode::File { sealed, .. } => {
                        *sealed = true;
                        Ok(())
                    }
                    Inode::Directory { .. } => Err(NsError::IsDirectory(path.clone())),
                }
            }
            Txn::SetPerm { path, perm } => {
                let id = self.resolve_node(tree, path)?;
                tree.inodes.get_mut(&id).expect("cached/resolved inode exists").set_perm(*perm);
                Ok(())
            }
        }
    }

    fn remember_dir(&mut self, path: &str, id: InodeId) {
        self.dir.clear();
        self.dir.push_str(path);
        self.dir_id = id;
        self.dir_valid = true;
    }

    fn remember_node(&mut self, path: &str, id: InodeId) {
        self.node.clear();
        self.node.push_str(path);
        self.node_id = id;
        self.node_valid = true;
    }

    /// Split `path` and resolve its parent directory, via the cache when
    /// the previous record touched the same directory.
    fn parent_of<'p>(
        &mut self,
        tree: &NamespaceTree,
        path: &'p str,
    ) -> Result<(InodeId, &'p str), NsError> {
        let (dir, name) = path::split(path).ok_or(NsError::RootImmutable)?;
        if name.is_empty() {
            // Validate-skip still rejects the shapes that would corrupt the
            // tree (a trailing slash would attach an empty component).
            return Err(NsError::Invalid(PathError(format!("{path:?} has a trailing slash"))));
        }
        if self.dir_valid && self.dir == dir {
            return Ok((self.dir_id, name));
        }
        let pid = tree.resolve(dir).ok_or_else(|| NsError::ParentNotFound(path.to_string()))?;
        // A file id is cached as-is: `attach_child` and the child lookups
        // classify it as ParentNotDirectory/NotFound exactly like a walk.
        self.remember_dir(dir, pid);
        Ok((pid, name))
    }

    /// Resolve a full path to its inode, via the node/dir caches when the
    /// previous records touched the same file or directory.
    fn resolve_node(&mut self, tree: &NamespaceTree, path: &str) -> Result<InodeId, NsError> {
        if path == "/" {
            return Ok(ROOT_ID);
        }
        if self.node_valid && self.node == path {
            return Ok(self.node_id);
        }
        if self.dir_valid && self.dir == path {
            return Ok(self.dir_id);
        }
        let (pid, name) = self.parent_of(tree, path)?;
        let id = match tree.inodes.get(&pid) {
            Some(Inode::Directory { children, .. }) => {
                children.get(name).copied().ok_or_else(|| NsError::NotFound(path.to_string()))?
            }
            _ => return Err(NsError::NotFound(path.to_string())),
        };
        self.remember_node(path, id);
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with(paths: &[&str]) -> NamespaceTree {
        let mut t = NamespaceTree::new();
        for p in paths {
            if let Some(dir) = p.strip_suffix('/') {
                t.mkdir_p(dir).unwrap();
            } else {
                t.mkdir_p(path::parent(p).unwrap()).unwrap();
                t.create(p, 3).unwrap();
            }
        }
        t
    }

    #[test]
    fn create_and_getfileinfo() {
        let mut t = NamespaceTree::new();
        t.mkdir("/a").unwrap();
        let info = t.create("/a/f", 3).unwrap();
        assert!(!info.is_dir);
        assert_eq!(info.replication, 3);
        assert_eq!(t.getfileinfo("/a/f").unwrap(), info);
        assert_eq!(t.num_files(), 1);
        assert_eq!(t.num_dirs(), 1);
    }

    #[test]
    fn create_requires_parent_dir() {
        let mut t = NamespaceTree::new();
        assert_eq!(t.create("/no/f", 1).unwrap_err(), NsError::ParentNotFound("/no/f".into()));
        t.create("/f", 1).unwrap();
        assert_eq!(t.create("/f/x", 1).unwrap_err(), NsError::ParentNotDirectory("/f/x".into()));
        assert_eq!(t.create("/f", 1).unwrap_err(), NsError::AlreadyExists("/f".into()));
    }

    #[test]
    fn mkdir_p_is_idempotent_but_respects_files() {
        let mut t = NamespaceTree::new();
        t.mkdir_p("/a/b/c").unwrap();
        t.mkdir_p("/a/b/c").unwrap();
        assert_eq!(t.num_dirs(), 3);
        t.create("/a/b/c/f", 1).unwrap();
        assert_eq!(t.mkdir_p("/a/b/c/f").unwrap_err(), NsError::IsFile("/a/b/c/f".into()));
    }

    #[test]
    fn delete_file_and_empty_dir() {
        let mut t = tree_with(&["/d/", "/d/f"]);
        assert_eq!(t.delete("/d/f", false).unwrap(), (1, 0));
        assert_eq!(t.delete("/d", false).unwrap(), (0, 1));
        assert_eq!(t.num_files(), 0);
        assert_eq!(t.num_dirs(), 0);
        assert!(!t.exists("/d"));
    }

    #[test]
    fn delete_nonempty_requires_recursive() {
        let mut t = tree_with(&["/d/sub/", "/d/f1", "/d/sub/f2"]);
        assert_eq!(t.delete("/d", false).unwrap_err(), NsError::NotEmpty("/d".into()));
        assert_eq!(t.delete("/d", true).unwrap(), (2, 2));
        assert_eq!(t.num_files(), 0);
        assert_eq!(t.num_dirs(), 0);
    }

    #[test]
    fn delete_root_forbidden() {
        let mut t = NamespaceTree::new();
        assert_eq!(t.delete("/", true).unwrap_err(), NsError::RootImmutable);
    }

    #[test]
    fn rename_moves_subtree() {
        let mut t = tree_with(&["/a/b/", "/a/b/f", "/c/"]);
        t.rename("/a/b", "/c/b2").unwrap();
        assert!(t.exists("/c/b2/f"));
        assert!(!t.exists("/a/b"));
        assert_eq!(t.num_files(), 1);
        assert_eq!(t.num_dirs(), 3);
    }

    #[test]
    fn rename_rejects_bad_targets() {
        let mut t = tree_with(&["/a/b/", "/x"]);
        assert_eq!(
            t.rename("/a", "/a/b/evil").unwrap_err(),
            NsError::RenameIntoSelf { src: "/a".into(), dst: "/a/b/evil".into() }
        );
        assert_eq!(t.rename("/a", "/x").unwrap_err(), NsError::AlreadyExists("/x".into()));
        assert_eq!(t.rename("/missing", "/y").unwrap_err(), NsError::NotFound("/missing".into()));
        assert_eq!(
            t.rename("/a", "/no/where").unwrap_err(),
            NsError::ParentNotFound("/no/where".into())
        );
        assert_eq!(t.rename("/", "/r").unwrap_err(), NsError::RootImmutable);
    }

    #[test]
    fn list_sorted() {
        let t = tree_with(&["/d/", "/d/z", "/d/a", "/d/m"]);
        assert_eq!(t.list("/d").unwrap(), vec!["a", "m", "z"]);
        assert_eq!(t.list("/d/a").unwrap_err(), NsError::IsFile("/d/a".into()));
    }

    #[test]
    fn blocks_and_sealing() {
        let mut t = tree_with(&["/f"]);
        t.add_block("/f", 10).unwrap();
        t.add_block("/f", 11).unwrap();
        t.close_file("/f").unwrap();
        t.close_file("/f").unwrap(); // idempotent
        assert_eq!(t.add_block("/f", 12).unwrap_err(), NsError::FileSealed("/f".into()));
        let info = t.getfileinfo("/f").unwrap();
        assert_eq!(info.blocks, vec![10, 11]);
        assert!(info.sealed);
    }

    #[test]
    fn apply_matches_direct_ops() {
        let mut direct = NamespaceTree::new();
        direct.mkdir("/a").unwrap();
        direct.create("/a/f", 2).unwrap();
        direct.rename("/a/f", "/a/g").unwrap();

        let mut replayed = NamespaceTree::new();
        for txn in [
            Txn::Mkdir { path: "/a".into() },
            Txn::Create { path: "/a/f".into(), replication: 2 },
            Txn::Rename { src: "/a/f".into(), dst: "/a/g".into() },
        ] {
            replayed.apply(&txn).unwrap();
        }
        assert_eq!(direct.fingerprint(), replayed.fingerprint());
        assert_eq!(replayed.divergences(), 0);
    }

    #[test]
    fn replay_session_matches_naive_apply() {
        let workload = [
            Txn::Mkdir { path: "/a".into() },
            Txn::Mkdir { path: "/a/b".into() },
            Txn::Create { path: "/a/b/f0".into(), replication: 3 },
            Txn::AddBlock { path: "/a/b/f0".into(), block_id: 1, len: 64 },
            Txn::AddBlock { path: "/a/b/f0".into(), block_id: 2, len: 64 },
            Txn::CloseFile { path: "/a/b/f0".into() },
            Txn::Create { path: "/a/b/f1".into(), replication: 2 },
            Txn::SetPerm { path: "/a/b".into(), perm: 0o750 },
            Txn::SetPerm { path: "/".into(), perm: 0o711 },
            Txn::Rename { src: "/a/b/f1".into(), dst: "/a/g".into() },
            Txn::Delete { path: "/a/b/f0".into(), recursive: false },
            Txn::Create { path: "/a/b/f2".into(), replication: 1 },
        ];
        let mut naive = NamespaceTree::new();
        let mut fast = NamespaceTree::new();
        let mut session = ReplaySession::new();
        for txn in &workload {
            naive.apply(txn).unwrap();
            session.apply(&mut fast, txn).unwrap();
        }
        assert_eq!(naive.fingerprint(), fast.fingerprint());
        assert_eq!(naive.num_files(), fast.num_files());
        assert_eq!(naive.num_dirs(), fast.num_dirs());
    }

    #[test]
    fn replay_session_rename_invalidates_cached_parent() {
        // The session resolves `/d` once, then the directory moves out from
        // under the cache; the next create must not attach under the old
        // location.
        let txns = [
            Txn::Mkdir { path: "/d".into() },
            Txn::Mkdir { path: "/e".into() },
            Txn::Create { path: "/d/f".into(), replication: 1 },
            Txn::Rename { src: "/d".into(), dst: "/e/d2".into() },
            Txn::Create { path: "/e/d2/g".into(), replication: 1 },
        ];
        let mut naive = NamespaceTree::new();
        let mut fast = NamespaceTree::new();
        let mut session = ReplaySession::new();
        for txn in &txns {
            naive.apply(txn).unwrap();
            session.apply(&mut fast, txn).unwrap();
        }
        // A create into the *old* path must now fail in both.
        let stale = Txn::Create { path: "/d/h".into(), replication: 1 };
        assert!(naive.apply(&stale).is_err());
        assert!(session.apply(&mut fast, &stale).is_err());
        assert_eq!(naive.fingerprint(), fast.fingerprint());
    }

    #[test]
    fn replay_session_delete_invalidates_cached_file() {
        let mut fast = NamespaceTree::new();
        let mut session = ReplaySession::new();
        session.apply(&mut fast, &Txn::Mkdir { path: "/x".into() }).unwrap();
        session.apply(&mut fast, &Txn::Create { path: "/x/f".into(), replication: 1 }).unwrap();
        session
            .apply(&mut fast, &Txn::AddBlock { path: "/x/f".into(), block_id: 9, len: 1 })
            .unwrap();
        session.apply(&mut fast, &Txn::Delete { path: "/x/f".into(), recursive: false }).unwrap();
        // The node cache was dropped: a stale AddBlock fails instead of
        // resurrecting the deleted inode.
        let err = session
            .apply(&mut fast, &Txn::AddBlock { path: "/x/f".into(), block_id: 10, len: 1 })
            .unwrap_err();
        assert_eq!(err, NsError::NotFound("/x/f".into()));
    }

    #[test]
    fn replay_session_rejects_malformed_shapes() {
        let mut t = NamespaceTree::new();
        let mut s = ReplaySession::new();
        assert!(s.apply(&mut t, &Txn::Create { path: "/".into(), replication: 1 }).is_err());
        assert!(s.apply(&mut t, &Txn::Mkdir { path: "/a/".into() }).is_err());
        assert!(s.apply(&mut t, &Txn::Delete { path: "/".into(), recursive: true }).is_err());
    }

    #[test]
    fn fingerprint_distinguishes_trees() {
        let a = tree_with(&["/x/", "/x/f"]);
        let b = tree_with(&["/x/", "/x/g"]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = tree_with(&["/x/", "/x/f"]);
        assert_eq!(a.fingerprint(), c.fingerprint());
        c.set_perm("/x/f", 0o600).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
