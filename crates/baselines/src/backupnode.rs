//! HDFS BackupNode: one primary streaming its journal asynchronously to one
//! backup.
//!
//! Normal operations are fast — the primary never waits for the backup
//! ("The BackupNode incurred less time but it does not guarantee metadata
//! consistency", Section IV-A) — but on takeover the backup must *recollect
//! block locations from every data server* before it can serve, because
//! data servers only ever reported to the primary. That recollection work
//! is proportional to file-system scale, which is why Table I's BackupNode
//! column climbs from ~3 s to ~140 s while every hot-standby design stays
//! flat.

use mams_coord::{CoordClient, Incoming};
use mams_core::{CpuModel, Ingress, MdsReq, MdsResp};
use mams_journal::{JournalBatch, ReplayCursor, Sn};
use mams_namespace::NamespaceTree;
use mams_sim::{Ctx, Duration, Message, Node, NodeId, Sim};

use crate::common::{exec_op, reply, FsScale, RetryCache, SavedCheckpoint, StandbyReplayer};
use mams_storage::DiskModel;

const T_FLUSH: u64 = 1;
const T_PING: u64 = 2;
const T_RECOLLECT_DONE: u64 = 3;
const T_DISK_BASE: u64 = 1_000;

/// Calibration constants (documented in DESIGN.md):
/// per-file block-location recollection cost. 1 GB image ≈ 7 M files ≈
/// 140 s of recollection in the paper's Table I → ~19.6 µs/file.
pub const RECOLLECT_PER_FILE: Duration = Duration::from_micros(20);
/// The primary↔backup ping failure-detection budget (the paper's 16 MB
/// MTTR of 2.8 s bounds it well below the 5 s ZooKeeper timeout).
pub const DETECT_BUDGET: Duration = Duration::from_millis(1_000);

#[derive(Debug, Clone, Copy)]
pub struct BackupNodeSpec {
    pub flush_interval: Duration,
    pub disk_latency: Duration,
    /// Scale model driving the recollection time.
    pub scale: FsScale,
    /// Primary-side journaling CPU per mutation (asynchronous stream serialization per record).
    pub journal_cpu: Duration,
}

impl Default for BackupNodeSpec {
    fn default() -> Self {
        BackupNodeSpec {
            flush_interval: Duration::from_millis(2),
            disk_latency: Duration::from_micros(1_500),
            scale: FsScale::from_image_mb(64),
            journal_cpu: Duration::from_micros(3),
        }
    }
}

/// Primary ↔ backup messages.
#[derive(Debug, Clone)]
enum BnMsg {
    /// Asynchronous journal stream (never awaited).
    Stream {
        batch: JournalBatch,
    },
    Ping,
    Pong,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BnRole {
    Primary,
    Backup,
    Recollecting,
}

/// Either half of a BackupNode pair (role decides behaviour; the backup
/// *becomes* a primary after takeover).
pub struct BnNode {
    spec: BackupNodeSpec,
    role: BnRole,
    peer: Option<NodeId>,
    coord: CoordClient,
    ns: NamespaceTree,
    next_block: u64,
    retry: RetryCache,
    cursor: ReplayCursor,
    replayer: StandbyReplayer,
    next_sn: Sn,
    pending: Vec<crate::common::PendingReply>,
    pending_txns: Vec<mams_journal::Txn>,
    flushing: std::collections::HashMap<u64, Vec<crate::common::PendingReply>>,
    next_disk_token: u64,
    /// Backup-side failure detector.
    last_pong_us: u64,
    ingress: Ingress,
    cpu: CpuModel,
}

impl BnNode {
    pub fn new(coord: NodeId, spec: BackupNodeSpec, role_primary: bool) -> Self {
        BnNode {
            spec,
            role: if role_primary { BnRole::Primary } else { BnRole::Backup },
            peer: None,
            coord: CoordClient::new(coord, Duration::from_secs(2)),
            ns: NamespaceTree::new(),
            next_block: 1,
            retry: RetryCache::new(),
            cursor: ReplayCursor::new(),
            replayer: StandbyReplayer::new(),
            next_sn: 1,
            pending: Vec::new(),
            pending_txns: Vec::new(),
            flushing: std::collections::HashMap::new(),
            next_disk_token: T_DISK_BASE,
            last_pong_us: 0,
            ingress: Ingress::default(),
            cpu: CpuModel::default(),
        }
    }

    /// Wire the pair together (called by the builder).
    pub fn set_peer(&mut self, peer: NodeId) {
        self.peer = Some(peer);
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        if self.pending.is_empty() && self.pending_txns.is_empty() {
            return;
        }
        let replies = std::mem::take(&mut self.pending);
        let txns = std::mem::take(&mut self.pending_txns);
        if !txns.is_empty() {
            let batch = JournalBatch::new(self.next_sn, 1, txns);
            self.next_sn += 1;
            // Fire-and-forget stream to the backup: no ack, no wait.
            if let Some(peer) = self.peer {
                ctx.send(peer, BnMsg::Stream { batch });
            }
        }
        let token = self.next_disk_token;
        self.next_disk_token += 1;
        self.flushing.insert(token, replies);
        ctx.set_timer(self.spec.disk_latency, token);
    }

    fn begin_takeover(&mut self, ctx: &mut Ctx<'_>) {
        self.role = BnRole::Recollecting;
        // HDFS `-importCheckpoint` semantics: the backup saves its namespace
        // as a fresh fsimage and restarts from the reload, so the new
        // primary serves exactly the state a cold image load yields. The
        // save + reload disk time rides on the recollection timer.
        let cp = SavedCheckpoint::save(&self.ns, self.next_block, self.cursor.max_sn());
        let image_io = DiskModel::image_disk().io_time(2 * cp.image.size_bytes());
        match cp.restore() {
            Ok((tree, _)) => {
                ctx.trace("bn.image_restart", || {
                    format!(
                        "v{} image, {} B",
                        cp.image.version().unwrap_or(0),
                        cp.image.size_bytes()
                    )
                });
                self.ns = tree;
                self.next_block = cp.next_block;
            }
            Err(e) => ctx.trace("bn.image_corrupt", || e.to_string()),
        }
        // The namespace was just replaced (and the new primary mutates it
        // outside replay): drop the session's cached handles.
        self.replayer.reset();
        let files = self.ns.num_files().max(self.spec.scale.nominal_files);
        let recollect = Duration::from_micros(files * RECOLLECT_PER_FILE.micros()) + image_io;
        ctx.trace("bn.takeover_start", || {
            format!("recollecting {files} files' block locations (~{recollect})")
        });
        ctx.set_timer(recollect, T_RECOLLECT_DONE);
    }

    fn serve(&mut self, ctx: &mut Ctx<'_>, from: NodeId, op: mams_core::FsOp, seq: u64) {
        if let Some(cached) = self.retry.check(from, seq) {
            ctx.send(from, cached);
            return;
        }
        match exec_op(&mut self.ns, &mut self.next_block, &op) {
            Ok((txn, out)) => {
                if let Some(txn) = txn {
                    self.pending_txns.push(txn);
                    self.pending.push((from, seq, Ok(out)));
                } else {
                    reply(&mut self.retry, ctx, from, seq, Ok(out));
                }
            }
            Err(e) => reply(&mut self.retry, ctx, from, seq, Err(e)),
        }
    }
}

impl Node for BnNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.coord.start(ctx);
        ctx.set_timer(self.spec.flush_interval, T_FLUSH);
        if self.role == BnRole::Backup {
            self.last_pong_us = ctx.now().micros();
            ctx.set_timer(Duration::from_millis(250), T_PING);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.coord.on_timer(ctx, token) {
            return;
        }
        match token {
            T_FLUSH => {
                if self.role == BnRole::Primary {
                    let budget = self.spec.flush_interval;
                    let mut cpu = self.cpu;
                    cpu.mutation += self.spec.journal_cpu;
                    for item in self.ingress.drain(budget, cpu) {
                        if let mams_core::IngressItem::Client { from, op, seq, .. } = item {
                            self.serve(ctx, from, op, seq);
                        }
                    }
                    self.flush(ctx);
                }
                ctx.set_timer(self.spec.flush_interval, T_FLUSH);
            }
            T_PING => {
                if self.role == BnRole::Backup {
                    if ctx.now().micros().saturating_sub(self.last_pong_us) > DETECT_BUDGET.micros()
                    {
                        self.begin_takeover(ctx);
                    } else {
                        if let Some(peer) = self.peer {
                            ctx.send(peer, BnMsg::Ping);
                        }
                        ctx.set_timer(Duration::from_millis(250), T_PING);
                    }
                }
            }
            T_RECOLLECT_DONE => {
                if self.role == BnRole::Recollecting {
                    self.role = BnRole::Primary;
                    let me = ctx.id();
                    self.coord.set(ctx, mams_core::keys::active(0), me.to_string(), true);
                    ctx.trace("bn.takeover_done", String::new);
                }
            }
            t => {
                if let Some(replies) = self.flushing.remove(&t) {
                    for (to, seq, result) in replies {
                        reply(&mut self.retry, ctx, to, seq, result);
                    }
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        let msg = match CoordClient::classify(msg) {
            Ok(Incoming::Resp(mams_coord::CoordResp::Registered)) => {
                if self.role == BnRole::Primary {
                    let me = ctx.id();
                    self.coord.set(ctx, mams_core::keys::active(0), me.to_string(), true);
                }
                return;
            }
            Ok(_) => return,
            Err(m) => m,
        };
        let msg = match msg.downcast::<BnMsg>() {
            Ok(BnMsg::Stream { batch }) => {
                if self.role == BnRole::Backup {
                    self.replayer.offer(
                        &mut self.cursor,
                        &mut self.ns,
                        &mut self.next_block,
                        &batch,
                    );
                    self.next_sn = self.cursor.max_sn() + 1;
                }
                return;
            }
            Ok(BnMsg::Ping) => {
                ctx.send(from, BnMsg::Pong);
                return;
            }
            Ok(BnMsg::Pong) => {
                self.last_pong_us = ctx.now().micros();
                return;
            }
            Err(m) => m,
        };
        if let Ok(MdsReq::Op { op, seq, .. }) = msg.downcast::<MdsReq>() {
            match self.role {
                BnRole::Primary => {
                    self.ingress.push(from, op, seq, None);
                }
                _ => ctx.send(from, MdsResp::NotActive { seq }),
            }
        }
    }
}

/// Build a primary + backup pair. Returns `(primary, backup)`.
pub fn build(sim: &mut Sim, coord: NodeId, spec: BackupNodeSpec) -> (NodeId, NodeId) {
    let primary_id = sim.num_nodes() as NodeId;
    let backup_id = primary_id + 1;
    let mut primary = BnNode::new(coord, spec, true);
    primary.set_peer(backup_id);
    let mut backup = BnNode::new(coord, spec, false);
    backup.set_peer(primary_id);
    let p = sim.add_node("bn-primary", Box::new(primary));
    let b = sim.add_node("bn-backup", Box::new(backup));
    assert_eq!((p, b), (primary_id, backup_id));
    (p, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mams_cluster::metrics::Metrics;
    use mams_cluster::mttr::mttr_from_completions;
    use mams_cluster::workload::Workload;
    use mams_cluster::{ClientConfig, FsClient};
    use mams_coord::{CoordConfig, CoordServer};
    use mams_namespace::Partitioner;
    use mams_sim::{DetRng, Sim, SimConfig, SimTime};

    fn run_takeover(image_mb: u64) -> f64 {
        let mut sim = Sim::new(SimConfig::default());
        let coord = sim.add_node("coord", Box::new(CoordServer::new(CoordConfig::default())));
        let spec = BackupNodeSpec { scale: FsScale::from_image_mb(image_mb), ..Default::default() };
        let (primary, _backup) = build(&mut sim, coord, spec);
        let m = Metrics::new(true);
        let cfg = ClientConfig::new(coord, Partitioner::new(1));
        sim.add_node(
            "client",
            Box::new(FsClient::new(
                cfg,
                Workload::create_only(0),
                m.clone(),
                DetRng::seed_from_u64(1),
            )),
        );
        let kill = SimTime(10_000_000);
        sim.at(kill, move |s| s.crash(primary));
        sim.run_for(Duration::from_secs(300));
        let outages = mttr_from_completions(&m.completions(), &[kill.micros()]);
        assert_eq!(outages.len(), 1, "service must recover");
        outages[0].mttr_secs()
    }

    #[test]
    fn mttr_grows_with_image_size() {
        let small = run_takeover(16);
        let large = run_takeover(256);
        assert!(small < large, "small {small:.1}s !< large {large:.1}s");
        // Paper band: ~2.8 s at 16 MB, ~36 s at 256 MB.
        assert!((1.5..6.0).contains(&small), "16 MB MTTR {small:.2}s");
        assert!((25.0..50.0).contains(&large), "256 MB MTTR {large:.2}s");
    }
}
