//! # mams — a from-scratch reproduction of "MAMS: A Highly Reliable
//! Policy for Metadata Service" (ICPP 2015)
//!
//! This facade re-exports the whole workspace. The fastest way in is the
//! deployment builder plus a workload:
//!
//! ```
//! use mams::cluster::deploy::{build, DeploySpec};
//! use mams::cluster::metrics::Metrics;
//! use mams::cluster::workload::Workload;
//! use mams::sim::{Duration, Sim, SimConfig, SimTime};
//!
//! // One replica group: an active + two hot standbys, plus the
//! // coordination service, shared storage pool, and data servers.
//! let mut sim = Sim::new(SimConfig::default());
//! let mut cluster =
//!     build(&mut sim, DeploySpec { groups: 1, standbys_per_group: 2, ..DeploySpec::default() });
//!
//! // A closed-loop client creating files; kill the active mid-run.
//! let metrics = Metrics::new(true);
//! cluster.add_client(&mut sim, Workload::create_only(0), metrics.clone());
//! let active = cluster.initial_active(0);
//! sim.at(SimTime(10_000_000), move |s| s.crash(active));
//!
//! sim.run_for(Duration::from_secs(30));
//! assert!(metrics.ok_count() > 1_000);          // service kept flowing
//! assert_eq!(metrics.failed_count(), 0);        // transparently
//! ```
//!
//! See `examples/` for richer scenarios and `mams-bench` for the harnesses
//! that regenerate every table and figure of the paper.
pub use mams_baselines as baselines;
pub use mams_chaos as chaos;
pub use mams_cluster as cluster;
pub use mams_coord as coord;
pub use mams_core as core;
pub use mams_journal as journal;
pub use mams_mapreduce as mapreduce;
pub use mams_namespace as namespace;
pub use mams_paxos as paxos;
pub use mams_sim as sim;
pub use mams_storage as storage;
