//! Client ↔ MDS and intra-group protocol messages.

use mams_journal::{SharedBatch, Sn};
use mams_namespace::FileInfo;
use mams_sim::NodeId;
use mams_storage::pool::Epoch;
use serde::{Deserialize, Serialize};

/// A metadata operation as issued by a client. The first five are exactly
/// the operations benchmarked in the paper (Figure 5/6); the rest round out
/// a usable file-system API.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsOp {
    Create { path: String, replication: u8 },
    Mkdir { path: String },
    Delete { path: String, recursive: bool },
    Rename { src: String, dst: String },
    GetFileInfo { path: String },
    List { path: String },
    AddBlock { path: String, len: u32 },
    CloseFile { path: String },
    SetPerm { path: String, perm: u16 },
}

impl FsOp {
    /// Whether this operation mutates the namespace (and therefore must be
    /// journaled and synchronized).
    pub fn is_mutation(&self) -> bool {
        !matches!(self, FsOp::GetFileInfo { .. } | FsOp::List { .. })
    }

    /// Path used for partition routing (the rename source, like
    /// `Txn::primary_path`).
    pub fn primary_path(&self) -> &str {
        match self {
            FsOp::Create { path, .. }
            | FsOp::Mkdir { path }
            | FsOp::Delete { path, .. }
            | FsOp::GetFileInfo { path }
            | FsOp::List { path }
            | FsOp::AddBlock { path, .. }
            | FsOp::CloseFile { path }
            | FsOp::SetPerm { path, .. } => path,
            FsOp::Rename { src, .. } => src,
        }
    }

    /// Whether the op is one of the paper's distributed transactions
    /// (structural: must execute on every replica group).
    pub fn is_structural(&self) -> bool {
        matches!(self, FsOp::Mkdir { .. } | FsOp::Delete { .. } | FsOp::Rename { .. })
    }
}

/// Successful operation result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpOutput {
    Done,
    Info(FileInfo),
    Listing(Vec<String>),
    /// Block id allocated by `AddBlock`.
    Block(u64),
}

/// Client → MDS requests.
#[derive(Debug, Clone)]
pub enum MdsReq {
    /// `seq` is a per-client monotonically increasing number; the server
    /// remembers the last reply per client so a retried request is answered
    /// from the cache instead of re-executed (duplicate handling). `acked`
    /// is the client's cumulative receipt watermark — every reply with seq
    /// ≤ `acked` has reached it — letting the server evict exactly the
    /// cache entries the client can never retry, instead of guessing by
    /// age.
    Op { op: FsOp, seq: u64, acked: u64 },
    /// Speculative-ack mode (opt-in): mutations are acknowledged on apply
    /// — before durability — carrying an ordering token (the op's journal
    /// `txid`); reads wait until the server's applied watermark reaches
    /// `min_token` (read-your-writes) and return the current watermark.
    /// The durable-ack contract of `Op` does not hold: a speculative ack
    /// can be lost on failover, which the returned token exposes (it
    /// regresses below the client's `min_token`).
    OpSpec { op: FsOp, seq: u64, min_token: u64, acked: u64 },
    /// Admin: checkpoint the namespace image to the SSP.
    Checkpoint,
    /// Data-server block report: the complete set of blocks this server
    /// holds. Sent to *all* group members so standbys stay hot.
    BlockReport { server: u32, blocks: Vec<u64> },
}

/// MDS → client responses.
#[derive(Debug, Clone)]
pub enum MdsResp {
    Reply {
        seq: u64,
        result: Result<OpOutput, String>,
    },
    /// Reply to an `OpSpec`: `token` is the server's applied txid
    /// watermark at the reply (for a mutation, the op's own txid). A token
    /// below the request's `min_token` means the active changed and the
    /// speculative suffix the client observed was discarded.
    ReplySpec {
        seq: u64,
        result: Result<OpOutput, String>,
        token: u64,
    },
    /// The receiver is not the active for this group; the client should
    /// re-resolve the active from the global view and retry.
    NotActive {
        seq: u64,
    },
}

impl MdsResp {
    /// Extract a response from a wire message, accepting both the owned
    /// form and the shared `Arc` form servers send for cache-backed replies
    /// (the retry cache keeps responses behind `Arc`, so a reply — cached
    /// or fresh — ships a reference-count bump instead of a deep clone).
    pub fn from_message(msg: mams_sim::Message) -> Result<MdsResp, mams_sim::Message> {
        match msg.downcast::<MdsResp>() {
            Ok(r) => Ok(r),
            Err(m) => match m.downcast::<std::sync::Arc<MdsResp>>() {
                Ok(a) => Ok(std::sync::Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone())),
                Err(m) => Err(m),
            },
        }
    }
}

/// Intra-replica-group messages.
#[derive(Debug, Clone)]
pub enum GroupMsg {
    /// Active → members: journal synchronization (the "modified two-phase
    /// commit": the SSP append is the durable record, member acks are the
    /// commit votes the active waits for before answering clients). Every
    /// standby's message shares the one batch allocation the active sealed.
    SyncJournal { epoch: Epoch, batch: SharedBatch },
    /// Member → active: applied through `sn` (duplicate-suppressed).
    SyncAck { sn: Sn },
    /// Member → (new) active after a view change: step 5 registration,
    /// carrying the member's journal position.
    Register { sn: Sn },
    /// Active → member: registration verdict.
    RegisterAck { as_standby: bool, epoch: Epoch, tail_sn: Sn },
    /// Active → junior: begin renewing towards `tip_sn`.
    RenewStart { tip_sn: Sn },
    /// Junior → active: catch-up progress (pool phase).
    RenewProgress { sn: Sn },
    /// Active → junior: the final-synchronization journal range (shared
    /// handles into the active's log — no copy per junior).
    RenewJournal { epoch: Epoch, batches: Vec<SharedBatch> },
    /// Coordinator active → other groups' actives: apply a structural
    /// transaction (distributed transaction leg). `xid` is unique per
    /// (origin group, txid) for duplicate suppression.
    XGroupApply { xid: (u32, u64), txn: mams_journal::Txn },
    /// Reply to `XGroupApply` once the leg is durable in that group.
    XGroupAck { xid: (u32, u64), group: u32, ok: bool },
}

/// Reserved data-server id range start for MDS-internal use.
pub const NO_SERVER: u32 = u32::MAX;

#[allow(unused)]
fn _assert_send() {
    fn is_send<T: Send>() {}
    is_send::<MdsReq>();
    is_send::<MdsResp>();
    is_send::<GroupMsg>();
    let _ = NodeId::default();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_classification() {
        assert!(FsOp::Create { path: "/f".into(), replication: 1 }.is_mutation());
        assert!(FsOp::Rename { src: "/a".into(), dst: "/b".into() }.is_mutation());
        assert!(!FsOp::GetFileInfo { path: "/f".into() }.is_mutation());
        assert!(!FsOp::List { path: "/".into() }.is_mutation());
    }

    #[test]
    fn structural_matches_paper_distributed_txns() {
        assert!(FsOp::Mkdir { path: "/d".into() }.is_structural());
        assert!(FsOp::Delete { path: "/d".into(), recursive: true }.is_structural());
        assert!(FsOp::Rename { src: "/a".into(), dst: "/b".into() }.is_structural());
        assert!(!FsOp::Create { path: "/f".into(), replication: 1 }.is_structural());
        assert!(!FsOp::AddBlock { path: "/f".into(), len: 1 }.is_structural());
    }

    #[test]
    fn rename_routes_by_source() {
        assert_eq!(FsOp::Rename { src: "/s".into(), dst: "/d".into() }.primary_path(), "/s");
    }
}
