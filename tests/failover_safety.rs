//! Randomized fault-schedule tests for the whole-system safety invariants
//! (DESIGN.md §4): single active per group, no acked-op loss, fencing-epoch
//! monotonicity, divergence-freedom, eventual recovery.

use mams::cluster::deploy::{build, DeploySpec};
use mams::cluster::faults;
use mams::cluster::metrics::Metrics;
use mams::cluster::workload::Workload;
use mams::journal::Txn;
use mams::sim::{DetRng, Duration, Sim, SimConfig, SimTime};

/// Build a 1A3S cluster with a client, inject a random fault schedule, and
/// return (sim, metrics) after the run.
fn random_fault_run(seed: u64) -> (Sim, std::sync::Arc<mams::cluster::metrics::Metrics>) {
    let mut sim = Sim::new(SimConfig { seed, ..SimConfig::default() });
    let mut d =
        build(&mut sim, DeploySpec { groups: 1, standbys_per_group: 3, ..DeploySpec::default() });
    let metrics = Metrics::new(true);
    d.add_client(&mut sim, Workload::create_mkdir(0), metrics.clone());

    let members = d.groups[0].members.clone();
    let coord = d.coord;
    let mut rng = DetRng::seed_from_u64(seed ^ 0xFA17);
    // 4 random faults between t=15s and t=75s, at least 12s apart so the
    // cluster can breathe (the paper's tests also space failures out).
    for k in 0..4u64 {
        let at = SimTime((15 + 15 * k) * 1_000_000 + rng.below(3_000_000));
        let victim = members[rng.index(members.len())];
        match rng.below(3) {
            0 => faults::schedule_crash_restart(&mut sim, victim, at, Duration::from_secs(6)),
            1 => faults::schedule_unplug(&mut sim, victim, at, Duration::from_secs(6)),
            _ => faults::schedule_lock_loss(&mut sim, coord, victim, at),
        }
    }
    // Long quiet tail so every renewal finishes.
    sim.run_until(SimTime(120_000_000));
    (sim, metrics)
}

#[test]
fn randomized_faults_never_lose_acked_creates() {
    for seed in [11u64, 22, 33, 44, 55] {
        let mut sim = Sim::new(SimConfig { seed, ..SimConfig::default() });
        let mut d = build(
            &mut sim,
            DeploySpec { groups: 1, standbys_per_group: 3, ..DeploySpec::default() },
        );
        let metrics = Metrics::new(true);
        d.add_client(&mut sim, Workload::create_only(0), metrics.clone());
        let members = d.groups[0].members.clone();
        let mut rng = DetRng::seed_from_u64(seed);
        for k in 0..3u64 {
            let at = SimTime((15 + 20 * k) * 1_000_000 + rng.below(2_000_000));
            let victim = members[rng.index(members.len())];
            faults::schedule_crash_restart(&mut sim, victim, at, Duration::from_secs(8));
        }
        sim.run_until(SimTime(100_000_000));

        let acked = metrics.ok_count();
        assert!(acked > 1_000, "seed {seed}: too few ops ({acked})");

        // Every acknowledged create must be durable in the shared pool
        // journal (invariant 2: no acked-op loss).
        let pool = d.shared_pool.lock();
        let g = pool.group(0).expect("group journal");
        let mut journaled_creates = 0u64;
        if let Some(batches) = g.read_journal(0, usize::MAX) {
            for b in batches {
                journaled_creates +=
                    b.records.iter().filter(|r| matches!(r, Txn::Create { .. })).count() as u64;
            }
        }
        // acked = setup mkdir + creates; allow the journal to hold *more*
        // (unacked tail), never less.
        assert!(
            journaled_creates + 1 >= acked,
            "seed {seed}: acked {acked} but only {journaled_creates} creates journaled"
        );
    }
}

#[test]
fn randomized_faults_recover_and_stay_consistent() {
    for seed in [7u64, 77, 777] {
        let (sim, metrics) = random_fault_run(seed);

        // Service recovered: successes in the final 20 virtual seconds.
        let late_ok =
            metrics.completions().iter().filter(|c| c.ok && c.at_us > 100_000_000).count();
        assert!(late_ok > 100, "seed {seed}: no traffic after the fault storm ({late_ok})");

        // Fencing epochs only ever increase.
        let mut last_epoch = 0u64;
        for e in sim.trace().events() {
            if e.tag == "lock.grant" {
                let epoch: u64 = e
                    .detail
                    .rsplit("epoch ")
                    .next()
                    .and_then(|s| s.trim_end_matches(')').parse().ok())
                    .expect("epoch in grant trace");
                assert!(epoch > last_epoch, "seed {seed}: epoch regression in {e}");
                last_epoch = epoch;
            }
        }
        assert!(last_epoch >= 1, "seed {seed}: no grants recorded");

        // No replica divergence was ever traced.
        assert!(
            !sim.trace().events().iter().any(|e| e.tag.contains("diverg")),
            "seed {seed}: divergence traced"
        );
    }
}

#[test]
fn lock_grants_are_serialized_per_group() {
    // The single-active invariant at the coordination layer: between two
    // grants of a group's lock there must be a release (freed) event.
    let (sim, _metrics) = random_fault_run(0xAB);
    let mut held = false;
    for e in sim.trace().events() {
        match e.tag {
            "lock.grant" if e.detail.starts_with("g/0/lock") => {
                assert!(!held, "double grant without release: {e}");
                held = true;
            }
            "lock.freed" if e.detail.starts_with("g/0/lock") => {
                held = false;
            }
            _ => {}
        }
    }
}

#[test]
fn multi_group_cluster_survives_fault_storm() {
    let mut sim = Sim::new(SimConfig { seed: 99, ..SimConfig::default() });
    let spec = DeploySpec::mams(3, 6);
    let mut d = build(&mut sim, spec);
    let metrics = Metrics::new(true);
    for c in 0..4 {
        d.add_client(&mut sim, Workload::mixed(c), metrics.clone());
    }
    // Kill every group's active in quick succession.
    for g in 0..3 {
        let victim = d.initial_active(g);
        faults::schedule_crash_restart(
            &mut sim,
            victim,
            SimTime((20 + g as u64 * 3) * 1_000_000),
            Duration::from_secs(10),
        );
    }
    sim.run_until(SimTime(120_000_000));
    let late_ok = metrics.completions().iter().filter(|c| c.ok && c.at_us > 100_000_000).count();
    assert!(late_ok > 200, "multi-group cluster did not recover ({late_ok})");
    assert!(!sim.trace().events().iter().any(|e| e.tag.contains("diverg")));
}

#[test]
fn coordination_service_restart_heals_without_split_brain() {
    // The coordination service crashes and comes back EMPTY (no sessions,
    // no view, lock epochs reset). The cluster must re-converge to exactly
    // one serving active with no acked-op loss: sessions re-register via
    // NoSession, the view is re-published, and the SSP's monotone fencing
    // epoch blocks any stale-epoch writer a fresh lock grant might create.
    let mut sim = Sim::new(SimConfig { seed: 0xC0DE, ..SimConfig::default() });
    // Rebuild the coord as restartable by building a deployment, then
    // crash-restarting node 0 (the coord is always node 0).
    let mut d =
        build(&mut sim, DeploySpec { groups: 1, standbys_per_group: 2, ..DeploySpec::default() });
    let metrics = Metrics::new(true);
    d.add_client(&mut sim, Workload::create_only(0), metrics.clone());
    sim.run_until(SimTime(100_000_000));
    assert!(metrics.ok_count() > 1_000);

    // Emulate a total coordination outage: partition the coord away long
    // enough for every session (including the active's) to expire, then
    // heal. On heal, every member re-registers through NoSession and the
    // view is rebuilt from scratch.
    let coord = d.coord;
    let everyone_else: Vec<_> =
        (0..sim.num_nodes() as mams_sim::NodeId).filter(|&n| n != coord).collect();
    let now = sim.now();
    mams_cluster::faults::schedule_partition(
        &mut sim,
        vec![coord],
        everyone_else,
        now,
        Some(Duration::from_secs(12)),
    );
    sim.run_for(Duration::from_secs(42));

    // Converged: traffic flows again...
    let late = metrics
        .completions()
        .iter()
        .filter(|c| c.ok && c.at_us > sim.now().micros() - 10_000_000)
        .count();
    assert!(late > 500, "cluster did not heal after coord outage ({late})");
    // ...no acked create was lost...
    let pool = d.shared_pool.lock();
    let g = pool.group(0).expect("journal");
    let mut creates = 0u64;
    if let Some(batches) = g.read_journal(0, usize::MAX) {
        for b in batches {
            creates +=
                b.records.iter().filter(|r| matches!(r, mams::journal::Txn::Create { .. })).count()
                    as u64;
        }
    }
    assert!(creates + 1 >= metrics.ok_count(), "acked {} journaled {creates}", metrics.ok_count());
    drop(pool);
    // ...and the epoch history stayed monotone per grant.
    let mut last = 0u64;
    for e in sim.trace().events() {
        if e.tag == "lock.grant" {
            let epoch: u64 = e
                .detail
                .rsplit("epoch ")
                .next()
                .and_then(|x| x.trim_end_matches(')').parse().ok())
                .unwrap();
            assert!(epoch > last, "epoch regression: {e}");
            last = epoch;
        }
    }
}
