//! An embedded file-system port: lets any node issue metadata operations
//! with the same routing/retry/reconciliation behaviour as the standalone
//! client, supporting multiple outstanding requests.

use std::collections::HashMap;

use mams_coord::{CoordEvent, CoordReq, CoordResp};
use mams_core::{FsOp, MdsReq, MdsResp, OpOutput};
use mams_namespace::Partitioner;
use mams_sim::{Ctx, Duration, Message, NodeId};

/// Timer tokens used by `FsIo` are `token_base + seq`; the owner must keep
/// its own tokens below `token_base`.
const DEFAULT_TOKEN_BASE: u64 = 1 << 32;

/// Outcome of feeding a message through [`FsIo::on_message`].
pub enum IoEvent {
    /// Operation `seq` finished.
    Completed { seq: u64, result: Result<OpOutput, String> },
    /// The message was FsIo-internal traffic.
    Consumed,
    /// Not ours; returned to the owner.
    NotMine(Message),
}

struct Pending {
    op: FsOp,
    attempts: u32,
    group: u32,
}

/// File-system access port.
pub struct FsIo {
    coord: NodeId,
    partitioner: Partitioner,
    timeout: Duration,
    actives: HashMap<u32, NodeId>,
    pending: HashMap<u64, Pending>,
    next_seq: u64,
}

impl FsIo {
    pub fn new(coord: NodeId, partitioner: Partitioner) -> Self {
        FsIo {
            coord,
            partitioner,
            timeout: Duration::from_millis(1_000),
            actives: HashMap::new(),
            pending: HashMap::new(),
            next_seq: 0,
        }
    }

    /// Subscribe to the global view. Call from `on_start`.
    pub fn start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.send(self.coord, CoordReq::Watch { prefix: "g/".into(), req: 0 });
        self.refresh(ctx);
    }

    fn refresh(&self, ctx: &mut Ctx<'_>) {
        ctx.send(self.coord, CoordReq::List { prefix: "g/".into(), req: 0 });
    }

    /// Issue an operation; the completion arrives later via
    /// [`IoEvent::Completed`] with the returned seq.
    pub fn submit(&mut self, ctx: &mut Ctx<'_>, op: FsOp) -> u64 {
        self.next_seq += 1;
        let seq = self.next_seq;
        let group = self.partitioner.owner(op.primary_path());
        self.pending.insert(seq, Pending { op, attempts: 0, group });
        self.attempt(ctx, seq);
        seq
    }

    fn attempt(&mut self, ctx: &mut Ctx<'_>, seq: u64) {
        let p = match self.pending.get_mut(&seq) {
            Some(p) => p,
            None => return,
        };
        p.attempts += 1;
        let op = p.op.clone();
        let group = p.group;
        // Receipt watermark: seqs are issued in order, so everything below
        // the lowest still-pending seq has completed (cumulatively).
        let acked = self.pending.keys().copied().min().map_or(self.next_seq, |m| m - 1);
        match self.actives.get(&group) {
            Some(&a) => ctx.send(a, MdsReq::Op { op, seq, acked }),
            None => self.refresh(ctx),
        }
        ctx.set_timer(self.timeout, DEFAULT_TOKEN_BASE + seq);
    }

    /// Feed a timer through; `true` if it was ours.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) -> bool {
        if token < DEFAULT_TOKEN_BASE {
            return false;
        }
        let seq = token - DEFAULT_TOKEN_BASE;
        if self.pending.contains_key(&seq) {
            self.refresh(ctx);
            self.attempt(ctx, seq);
        }
        true
    }

    fn reconcile(op: &FsOp, err: &str) -> bool {
        match op {
            FsOp::Create { .. } | FsOp::Mkdir { .. } => err.contains("already exists"),
            FsOp::Delete { .. } | FsOp::Rename { .. } => err.contains("no such file"),
            _ => false,
        }
    }

    fn absorb_active(&mut self, key: &str, value: Option<&str>) {
        if let Some(group) = mams_core::keys::parse_active_key(key) {
            match value.and_then(|v| v.parse().ok()) {
                Some(n) => {
                    self.actives.insert(group, n);
                }
                None => {
                    self.actives.remove(&group);
                }
            }
        }
    }

    /// Feed a message through.
    pub fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) -> IoEvent {
        let msg = match MdsResp::from_message(msg) {
            Ok(MdsResp::Reply { seq, result }) => {
                let p = match self.pending.remove(&seq) {
                    Some(p) => p,
                    None => return IoEvent::Consumed, // stale reply
                };
                let result = match result {
                    Ok(out) => Ok(out),
                    Err(e) if p.attempts > 1 && Self::reconcile(&p.op, &e) => Ok(OpOutput::Done),
                    Err(e) => Err(e),
                };
                return IoEvent::Completed { seq, result };
            }
            // This I/O layer never issues `OpSpec`, so a speculative reply
            // can only be a stray; drop it.
            Ok(MdsResp::ReplySpec { .. }) => return IoEvent::Consumed,
            Ok(MdsResp::NotActive { seq }) => {
                if self.pending.contains_key(&seq) {
                    self.refresh(ctx);
                    ctx.set_timer(Duration::from_millis(50), DEFAULT_TOKEN_BASE + seq);
                }
                return IoEvent::Consumed;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<CoordEvent>() {
            Ok(ev) => {
                if let CoordEvent::KeyChanged { key, value, .. } = ev {
                    self.absorb_active(&key, value.as_deref());
                }
                return IoEvent::Consumed;
            }
            Err(m) => m,
        };
        match msg.downcast::<CoordResp>() {
            Ok(CoordResp::Listing { entries, .. }) => {
                for (k, v) in &entries {
                    self.absorb_active(k, Some(v));
                }
                IoEvent::Consumed
            }
            Ok(_) => IoEvent::Consumed,
            Err(m) => IoEvent::NotMine(m),
        }
    }
}
