//! Criterion benchmarks for the namespace-image pipeline: legacy full-path
//! v1 vs parent-id delta v2 encode/decode, and chunked streaming decode vs
//! buffered decode. The wall-clock sweep lives in `bench_image` (the
//! binary); these isolate the per-format costs at a fixed 50k-file tree.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mams_namespace::{
    decode_image, encode_image, encode_image_v1, NamespaceTree, StreamingImageDecoder,
};

const FILES: u64 = 50_000;
const FILES_PER_DIR: u64 = 250;
const CHUNK: usize = 64 * 1024;

fn sample_tree() -> NamespaceTree {
    let mut t = NamespaceTree::new();
    let mut made = 0u64;
    'outer: for d in 0.. {
        let dir = format!("/project{d:04}/dataset");
        t.mkdir_p(&dir).unwrap();
        for f in 0..FILES_PER_DIR {
            let p = format!("{dir}/part-{f:05}.data");
            t.create(&p, 3).unwrap();
            t.add_block(&p, made * 2 + 1).unwrap();
            t.close_file(&p).unwrap();
            made += 1;
            if made >= FILES {
                break 'outer;
            }
        }
    }
    t
}

fn bench_image_formats(c: &mut Criterion) {
    let tree = sample_tree();
    let v1 = encode_image_v1(&tree, 1);
    let v2 = encode_image(&tree, 1);

    let mut g = c.benchmark_group("image_format");
    g.throughput(Throughput::Elements(FILES));
    g.bench_function("encode_v1_50k", |b| b.iter(|| encode_image_v1(&tree, 1)));
    g.bench_function("encode_v2_50k", |b| b.iter(|| encode_image(&tree, 1)));
    g.bench_function("decode_v1_50k", |b| b.iter(|| decode_image(v1.data.clone()).unwrap()));
    g.bench_function("decode_v2_50k", |b| b.iter(|| decode_image(v2.data.clone()).unwrap()));
    g.finish();
}

fn bench_streaming(c: &mut Criterion) {
    let tree = sample_tree();
    let v2 = encode_image(&tree, 1);

    let mut g = c.benchmark_group("image_streaming");
    g.throughput(Throughput::Bytes(v2.size_bytes()));
    g.bench_function("buffered_decode", |b| b.iter(|| decode_image(v2.data.clone()).unwrap()));
    g.bench_function("streaming_decode_64k_chunks", |b| {
        b.iter(|| {
            let mut d = StreamingImageDecoder::new();
            d.reserve_hint(v2.size_bytes());
            for c in v2.data.chunks(CHUNK) {
                d.push(c).unwrap();
            }
            d.finish().unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_image_formats, bench_streaming);
criterion_main!(benches);
