//! Global-view key layout and role encoding.
//!
//! The view is a small key space on the coordination service:
//!
//! ```text
//! g/<group>/lock            # the distributed lock (lock API, not a key)
//! g/<group>/active          # ephemeral: node id of the current active
//! g/<group>/state/<node>    # ephemeral: "A" | "S" | "J"
//! ```

use mams_sim::NodeId;

/// Key helpers.
pub mod keys {
    use super::NodeId;

    /// The group's distributed-lock path.
    pub fn lock(group: u32) -> String {
        format!("g/{group}/lock")
    }

    /// The group's active pointer.
    pub fn active(group: u32) -> String {
        format!("g/{group}/active")
    }

    /// A member's state key.
    pub fn state(group: u32, node: NodeId) -> String {
        format!("g/{group}/state/{node}")
    }

    /// Prefix covering one group's whole view.
    pub fn group_prefix(group: u32) -> String {
        format!("g/{group}/")
    }

    /// Prefix covering every group (used by actives that coordinate
    /// distributed transactions across groups).
    pub fn all_groups() -> String {
        "g/".to_string()
    }

    /// Parse a `state/<node>` key back to the node id.
    pub fn parse_state_key(key: &str) -> Option<(u32, NodeId)> {
        let rest = key.strip_prefix("g/")?;
        let (group, rest) = rest.split_once('/')?;
        let node = rest.strip_prefix("state/")?;
        Some((group.parse().ok()?, node.parse().ok()?))
    }

    /// Parse an `active` key back to the group id.
    pub fn parse_active_key(key: &str) -> Option<u32> {
        let rest = key.strip_prefix("g/")?;
        let (group, rest) = rest.split_once('/')?;
        (rest == "active").then(|| group.parse().ok()).flatten()
    }
}

/// Encode a node id as the view value of the `active` key.
pub fn encode_node(n: NodeId) -> String {
    n.to_string()
}

/// Decode the view value of the `active` key.
pub fn decode_node(s: &str) -> Option<NodeId> {
    s.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_round_trips() {
        assert_eq!(keys::lock(3), "g/3/lock");
        assert_eq!(keys::active(0), "g/0/active");
        assert_eq!(keys::state(2, 17), "g/2/state/17");
        assert_eq!(keys::parse_state_key("g/2/state/17"), Some((2, 17)));
        assert_eq!(keys::parse_state_key("g/2/active"), None);
        assert_eq!(keys::parse_active_key("g/5/active"), Some(5));
        assert_eq!(keys::parse_active_key("g/5/state/1"), None);
    }

    #[test]
    fn node_encoding() {
        assert_eq!(decode_node(&encode_node(42)), Some(42));
        assert_eq!(decode_node("bogus"), None);
    }

    #[test]
    fn group_prefix_contains_group_keys() {
        let p = keys::group_prefix(1);
        assert!(keys::active(1).starts_with(&p));
        assert!(keys::state(1, 9).starts_with(&p));
        assert!(!keys::active(10).starts_with(&p));
    }
}
