//! Structured protocol traces.
//!
//! Figure 7 (failover-stage breakdown) and Table II (state-transition
//! sequences) are produced by reading these traces back after a run, so
//! protocol crates tag the interesting instants (`"election.won"`,
//! `"failover.switch_done"`, `"view.state"`, …) rather than printing.

use std::fmt;

use crate::node::NodeId;
use crate::time::SimTime;

/// One trace record.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub time: SimTime,
    pub node: NodeId,
    /// Stable machine-readable tag, dot-separated (`"failover.election_won"`).
    pub tag: &'static str,
    /// Free-form human detail.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12}] n{:<3} {:<28} {}", self.time, self.node, self.tag, self.detail)
    }
}

/// Append-only trace sink. When disabled, `record` is a cheap no-op and the
/// detail closure is never evaluated.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    pub fn new(enabled: bool) -> Self {
        Trace { enabled, events: Vec::new() }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Record an event. `detail` is lazily evaluated.
    pub fn record(
        &mut self,
        time: SimTime,
        node: NodeId,
        tag: &'static str,
        detail: impl FnOnce() -> String,
    ) {
        if self.enabled {
            self.events.push(TraceEvent { time, node, tag, detail: detail() });
        }
    }

    /// All recorded events in time order (recording order == time order).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events whose tag starts with `prefix`.
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.tag.starts_with(prefix))
    }

    /// First event with exactly this tag at or after `from`.
    pub fn first_at_or_after(&self, tag: &str, from: SimTime) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.tag == tag && e.time >= from)
    }

    /// Last event with exactly this tag strictly before `before`.
    pub fn last_before(&self, tag: &str, before: SimTime) -> Option<&TraceEvent> {
        self.events.iter().rev().find(|e| e.tag == tag && e.time < before)
    }

    /// Drop all recorded events (between experiment phases).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing_and_skips_closure() {
        let mut t = Trace::new(false);
        let mut evaluated = false;
        t.record(SimTime(1), 0, "x", || {
            evaluated = true;
            String::new()
        });
        assert!(!evaluated);
        assert!(t.events().is_empty());
    }

    #[test]
    fn query_helpers() {
        let mut t = Trace::new(true);
        t.record(SimTime(10), 1, "op.ok", || "a".into());
        t.record(SimTime(20), 1, "op.fail", || "b".into());
        t.record(SimTime(30), 2, "op.ok", || "c".into());
        assert_eq!(t.with_prefix("op.").count(), 3);
        assert_eq!(t.first_at_or_after("op.ok", SimTime(15)).unwrap().time, SimTime(30));
        assert_eq!(t.last_before("op.ok", SimTime(30)).unwrap().time, SimTime(10));
        assert!(t.last_before("op.ok", SimTime(10)).is_none());
        t.clear();
        assert!(t.events().is_empty());
    }

    #[test]
    fn display_contains_tag() {
        let e = TraceEvent { time: SimTime(5), node: 3, tag: "a.b", detail: "d".into() };
        assert!(format!("{e}").contains("a.b"));
    }
}
