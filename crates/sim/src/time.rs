//! Virtual time: microsecond-resolution instants and durations.
//!
//! All protocol timing in the workspace (heartbeats, session timeouts,
//! journal-flush latencies, MTTR measurements) is expressed in these types.
//! They are deliberately tiny newtypes over `u64` so they are free to copy
//! and hash, and so arithmetic overflows loudly in debug builds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in microseconds since simulation
/// start. `SimTime::ZERO` is the boot instant of the simulated cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as the "never" sentinel for timers.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Microseconds since simulation start.
    #[inline]
    pub fn micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since simulation start (truncating).
    #[inline]
    pub fn millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    pub const ZERO: Duration = Duration(0);

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000)
    }

    /// Construct from a float second count (e.g. calibration constants).
    pub fn from_secs_f64(s: f64) -> Duration {
        assert!(s >= 0.0 && s.is_finite(), "negative or non-finite duration");
        Duration((s * 1e6).round() as u64)
    }

    #[inline]
    pub fn micros(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn millis(self) -> u64 {
        self.0 / 1_000
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration scaled by a non-negative factor (latency model jitter).
    pub fn mul_f64(self, k: f64) -> Duration {
        assert!(k >= 0.0 && k.is_finite(), "negative or non-finite scale");
        Duration((self.0 as f64 * k).round() as u64)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.checked_sub(rhs.0).expect("SimTime subtraction underflow"))
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.checked_sub(rhs.0).expect("Duration subtraction underflow"))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_us(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_us(self.0))
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_us(self.0))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_us(self.0))
    }
}

/// Render a microsecond count with a human-friendly unit.
fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.3}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.3}ms", us as f64 / 1e3)
    } else {
        format!("{}us", us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(Duration::from_secs(5).micros(), 5_000_000);
        assert_eq!(Duration::from_millis(5).micros(), 5_000);
        assert_eq!(Duration::from_micros(5).micros(), 5);
        assert_eq!(Duration::from_secs_f64(0.25).millis(), 250);
    }

    #[test]
    fn instant_arithmetic() {
        let t = SimTime::ZERO + Duration::from_millis(10);
        assert_eq!(t.micros(), 10_000);
        assert_eq!(t - SimTime::ZERO, Duration::from_millis(10));
        assert_eq!(t.since(t + Duration::from_secs(1)), Duration::ZERO);
        assert_eq!((t + Duration::from_secs(1)).since(t), Duration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn instant_subtraction_underflow_panics() {
        let _ = SimTime::ZERO - SimTime(1);
    }

    #[test]
    fn scaling() {
        assert_eq!(Duration::from_millis(100).mul_f64(2.5), Duration::from_millis(250));
        assert_eq!(Duration::from_millis(100).mul_f64(0.0), Duration::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Duration::from_micros(7)), "7us");
        assert_eq!(format!("{}", Duration::from_millis(7)), "7.000ms");
        assert_eq!(format!("{}", Duration::from_secs(7)), "7.000s");
        assert_eq!(format!("{}", SimTime::ZERO + Duration::from_secs(2)), "2.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(Duration::from_millis(1) < Duration::from_secs(1));
        assert_eq!(Duration::from_secs(1).saturating_sub(Duration::from_secs(2)), Duration::ZERO);
    }
}
