//! A Paxos-replicated log ("RSM") running on the simulator.
//!
//! Multi-Paxos with a stable leader: one phase-1 round establishes
//! leadership for every subsequent slot; normal-case writes are a single
//! accept round (one network round trip to a quorum). This is the structure
//! Boom-FS uses for its globally-consistent distributed log, and its costs
//! are exactly the ones the paper attributes to that design: every metadata
//! mutation pays a quorum round trip, and failover pays an election plus
//! log-repair delay ("centralizing repair action decisions and state
//! transition, which leads to additional failover time", Section II).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use mams_sim::{Ctx, Duration, Message, Node, NodeId};

use crate::acceptor::Acceptor;
use crate::ballot::Ballot;
use crate::messages::Value;

/// An accepted slot entry: `(slot, ballot, value)`.
pub type SlotEntry = (u64, Ballot, Value);

/// Timer tokens.
const T_HEARTBEAT: u64 = 1;
const T_ELECTION: u64 = 2;

/// Application state machine driven by the replicated log.
pub trait RsmApp: Send {
    /// Apply a committed command (called exactly once per slot, in order).
    fn apply(&mut self, slot: u64, cmd: &Value);
    /// Serve a read-only query (leader-side, after all committed entries
    /// are applied).
    fn query(&mut self, q: &Value) -> Value;
}

/// RSM protocol messages.
#[derive(Debug, Clone)]
pub enum RsmMsg {
    /// Phase 1 for all slots ≥ `from_slot`.
    Prepare {
        ballot: Ballot,
        from_slot: u64,
    },
    /// Promise carrying the acceptor's accepted entries ≥ `from_slot`.
    Promise {
        ballot: Ballot,
        entries: Vec<SlotEntry>,
        commit_index: u64,
    },
    PrepareNack {
        ballot: Ballot,
        promised: Ballot,
    },
    Accept {
        ballot: Ballot,
        slot: u64,
        value: Value,
    },
    Accepted {
        ballot: Ballot,
        slot: u64,
    },
    AcceptNack {
        ballot: Ballot,
        promised: Ballot,
    },
    /// Leader liveness + commit propagation.
    Heartbeat {
        ballot: Ballot,
        commit_index: u64,
    },
    /// Client write request.
    Propose {
        cmd: Value,
        req: u64,
    },
    /// Client write reply (`slot` set on success; `leader_hint` on redirect).
    ProposeReply {
        req: u64,
        committed: bool,
        slot: Option<u64>,
        leader_hint: Option<NodeId>,
    },
    /// Client read request.
    Query {
        q: Value,
        req: u64,
    },
    QueryReply {
        req: u64,
        ok: bool,
        result: Option<Value>,
        leader_hint: Option<NodeId>,
    },
}

/// Configuration for one RSM member.
#[derive(Debug, Clone)]
pub struct RsmConfig {
    /// Sim node ids of every member, in index order (including this node).
    pub members: Vec<NodeId>,
    /// This node's index in `members`.
    pub me: u32,
    /// Leader heartbeat interval.
    pub heartbeat: Duration,
    /// Follower patience before standing for election (jittered ±50%).
    pub election_timeout: Duration,
}

impl RsmConfig {
    pub fn new(members: Vec<NodeId>, me: u32) -> Self {
        RsmConfig {
            members,
            me,
            heartbeat: Duration::from_millis(500),
            election_timeout: Duration::from_secs(2),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Follower,
    Candidate,
    Leader,
}

#[derive(Debug, Default)]
struct Slot {
    acceptor: Acceptor,
}

/// A replicated-log member.
pub struct RsmNode<A: RsmApp> {
    cfg: RsmConfig,
    app: A,
    role: Role,
    /// Leadership ballot this node has promised (acceptor side, shared by
    /// all slots ≥ the prepare's from_slot — we use one leadership promise
    /// for simplicity and track per-slot accepts separately).
    promised: Ballot,
    /// Our ballot when leading/campaigning.
    ballot: Ballot,
    leader_hint: Option<NodeId>,
    slots: BTreeMap<u64, Slot>,
    /// Slots [0, commit_index) are committed and applied.
    commit_index: u64,
    /// Candidate: promises gathered (member index → entries).
    promises: BTreeMap<u32, Vec<SlotEntry>>,
    /// Leader: per-slot accept quorum tracking.
    accepts: HashMap<u64, BTreeSet<u32>>,
    /// Leader: next free slot.
    next_slot: u64,
    /// Leader: client to answer when a slot commits.
    waiting_clients: HashMap<u64, (NodeId, u64)>,
    /// Follower: whether a heartbeat arrived since the last election check.
    heard_from_leader: bool,
}

impl<A: RsmApp> RsmNode<A> {
    pub fn new(cfg: RsmConfig, app: A) -> Self {
        assert!((cfg.me as usize) < cfg.members.len());
        RsmNode {
            cfg,
            app,
            role: Role::Follower,
            promised: Ballot::ZERO,
            ballot: Ballot::ZERO,
            leader_hint: None,
            slots: BTreeMap::new(),
            commit_index: 0,
            promises: BTreeMap::new(),
            accepts: HashMap::new(),
            next_slot: 0,
            waiting_clients: HashMap::new(),
            heard_from_leader: false,
        }
    }

    fn quorum(&self) -> usize {
        self.cfg.members.len() / 2 + 1
    }

    fn my_id(&self) -> NodeId {
        self.cfg.members[self.cfg.me as usize]
    }

    fn peers(&self) -> impl Iterator<Item = NodeId> + '_ {
        let me = self.my_id();
        self.cfg.members.iter().copied().filter(move |&n| n != me)
    }

    fn broadcast(&self, ctx: &mut Ctx<'_>, msg: &RsmMsg) {
        for p in self.peers().collect::<Vec<_>>() {
            ctx.send(p, msg.clone());
        }
    }

    fn arm_election_timer(&mut self, ctx: &mut Ctx<'_>) {
        let base = self.cfg.election_timeout.micros();
        let jitter = ctx.rng().range(base / 2, base + base / 2);
        ctx.set_timer(Duration::from_micros(jitter), T_ELECTION);
    }

    fn start_election(&mut self, ctx: &mut Ctx<'_>) {
        self.role = Role::Candidate;
        self.ballot = self.promised.max(self.ballot).next_for(self.cfg.me);
        self.promised = self.ballot;
        self.promises.clear();
        // Self-promise with our own accepted suffix.
        let mine = self.accepted_from(self.commit_index);
        self.promises.insert(self.cfg.me, mine);
        ctx.trace("rsm.election_start", || format!("ballot {}", self.ballot));
        let msg = RsmMsg::Prepare { ballot: self.ballot, from_slot: self.commit_index };
        self.broadcast(ctx, &msg);
        self.arm_election_timer(ctx);
    }

    fn accepted_from(&self, from_slot: u64) -> Vec<SlotEntry> {
        self.slots
            .range(from_slot..)
            .filter_map(|(&s, slot)| slot.acceptor.accepted().map(|(b, v)| (s, *b, v.clone())))
            .collect()
    }

    fn become_leader(&mut self, ctx: &mut Ctx<'_>) {
        self.role = Role::Leader;
        self.leader_hint = Some(self.my_id());
        self.accepts.clear();
        ctx.trace("rsm.leader", || format!("ballot {}", self.ballot));

        // Merge promise suffixes: per slot keep the highest-ballot value,
        // then re-propose everything uncommitted under our ballot.
        let mut merged: BTreeMap<u64, (Ballot, Value)> = BTreeMap::new();
        for entries in self.promises.values() {
            for (slot, b, v) in entries {
                match merged.get(slot) {
                    Some((mb, _)) if mb >= b => {}
                    _ => {
                        merged.insert(*slot, (*b, v.clone()));
                    }
                }
            }
        }
        self.next_slot = merged
            .keys()
            .next_back()
            .map(|&s| s + 1)
            .unwrap_or(self.commit_index)
            .max(self.commit_index);
        for (slot, (_b, v)) in merged {
            if slot >= self.commit_index {
                self.propose_in_slot(ctx, slot, v, None);
            }
        }
        self.send_heartbeat(ctx);
        ctx.set_timer(self.cfg.heartbeat, T_HEARTBEAT);
    }

    fn send_heartbeat(&mut self, ctx: &mut Ctx<'_>) {
        let msg = RsmMsg::Heartbeat { ballot: self.ballot, commit_index: self.commit_index };
        self.broadcast(ctx, &msg);
    }

    fn propose_in_slot(
        &mut self,
        ctx: &mut Ctx<'_>,
        slot: u64,
        value: Value,
        client: Option<(NodeId, u64)>,
    ) {
        // Accept locally first.
        let entry = self.slots.entry(slot).or_default();
        entry.acceptor.on_accept(self.ballot, value.clone());
        let mut set = BTreeSet::new();
        set.insert(self.cfg.me);
        self.accepts.insert(slot, set);
        if let Some(c) = client {
            self.waiting_clients.insert(slot, c);
        }
        let msg = RsmMsg::Accept { ballot: self.ballot, slot, value };
        self.broadcast(ctx, &msg);
        self.maybe_commit(ctx);
    }

    fn maybe_commit(&mut self, ctx: &mut Ctx<'_>) {
        // Advance commit_index over contiguous quorum-accepted slots.
        loop {
            let slot = self.commit_index;
            let have_quorum = self.accepts.get(&slot).is_some_and(|s| s.len() >= self.quorum());
            if !have_quorum {
                break;
            }
            let value = self
                .slots
                .get(&slot)
                .and_then(|s| s.acceptor.accepted().map(|(_, v)| v.clone()))
                .expect("quorum-accepted slot has a local value");
            self.app.apply(slot, &value);
            self.commit_index += 1;
            ctx.trace("rsm.commit", || format!("slot {slot}"));
            if let Some((client, req)) = self.waiting_clients.remove(&slot) {
                ctx.send(
                    client,
                    RsmMsg::ProposeReply {
                        req,
                        committed: true,
                        slot: Some(slot),
                        leader_hint: Some(self.my_id()),
                    },
                );
            }
        }
    }

    /// Follower-side: apply contiguous accepted entries up to the leader's
    /// commit index.
    fn follow_commits(&mut self, ctx: &mut Ctx<'_>, leader_commit: u64) {
        while self.commit_index < leader_commit {
            let slot = self.commit_index;
            let value = match self.slots.get(&slot).and_then(|s| s.acceptor.accepted()) {
                Some((_, v)) => v.clone(),
                None => break, // hole: wait for the leader's re-propose
            };
            self.app.apply(slot, &value);
            self.commit_index += 1;
            ctx.trace("rsm.commit", || format!("slot {slot} (follower)"));
        }
    }

    fn step_down(&mut self, higher: Ballot, leader: Option<NodeId>) {
        self.promised = self.promised.max(higher);
        self.role = Role::Follower;
        self.leader_hint = leader;
        self.heard_from_leader = true;
        self.accepts.clear();
        self.waiting_clients.clear();
        self.promises.clear();
    }

    /// Whether this node currently believes it is the leader (test hook).
    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    /// Committed prefix length (test hook).
    pub fn commit_index(&self) -> u64 {
        self.commit_index
    }

    /// The application (test hook).
    pub fn app(&self) -> &A {
        &self.app
    }
}

impl<A: RsmApp + 'static> Node for RsmNode<A> {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.arm_election_timer(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            T_HEARTBEAT if self.role == Role::Leader => {
                self.send_heartbeat(ctx);
                ctx.set_timer(self.cfg.heartbeat, T_HEARTBEAT);
            }
            T_ELECTION => match self.role {
                Role::Leader => {}
                _ => {
                    if self.heard_from_leader {
                        self.heard_from_leader = false;
                        self.arm_election_timer(ctx);
                    } else {
                        self.start_election(ctx);
                    }
                }
            },
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        let msg = match msg.downcast::<RsmMsg>() {
            Ok(m) => m,
            Err(_) => return,
        };
        match msg {
            RsmMsg::Prepare { ballot, from_slot } => {
                if ballot > self.promised {
                    self.step_down(ballot, None);
                    let entries = self.accepted_from(from_slot);
                    ctx.send(
                        from,
                        RsmMsg::Promise { ballot, entries, commit_index: self.commit_index },
                    );
                } else {
                    ctx.send(from, RsmMsg::PrepareNack { ballot, promised: self.promised });
                }
            }
            RsmMsg::Promise { ballot, entries, commit_index: _ } => {
                if self.role != Role::Candidate || ballot != self.ballot {
                    return;
                }
                let idx = self.cfg.members.iter().position(|&n| n == from);
                if let Some(idx) = idx {
                    self.promises.insert(idx as u32, entries);
                    if self.promises.len() >= self.quorum() {
                        self.become_leader(ctx);
                    }
                }
            }
            RsmMsg::PrepareNack { ballot, promised } => {
                if self.role == Role::Candidate && ballot == self.ballot && promised > self.ballot {
                    self.step_down(promised, None);
                    self.arm_election_timer(ctx);
                }
            }
            RsmMsg::Accept { ballot, slot, value } => {
                if ballot >= self.promised {
                    if ballot > self.promised || self.role != Role::Follower {
                        self.step_down(ballot, Some(from));
                    }
                    self.promised = ballot;
                    self.leader_hint = Some(from);
                    self.heard_from_leader = true;
                    let entry = self.slots.entry(slot).or_default();
                    entry.acceptor.on_accept(ballot, value);
                    ctx.send(from, RsmMsg::Accepted { ballot, slot });
                } else {
                    ctx.send(from, RsmMsg::AcceptNack { ballot, promised: self.promised });
                }
            }
            RsmMsg::Accepted { ballot, slot } => {
                if self.role != Role::Leader || ballot != self.ballot {
                    return;
                }
                if let Some(idx) = self.cfg.members.iter().position(|&n| n == from) {
                    self.accepts.entry(slot).or_default().insert(idx as u32);
                    self.maybe_commit(ctx);
                }
            }
            RsmMsg::AcceptNack { ballot, promised } => {
                if self.role == Role::Leader && ballot == self.ballot && promised > self.ballot {
                    self.step_down(promised, None);
                    self.arm_election_timer(ctx);
                }
            }
            RsmMsg::Heartbeat { ballot, commit_index } => {
                if ballot >= self.promised {
                    if self.role != Role::Follower || ballot > self.promised {
                        self.step_down(ballot, Some(from));
                    }
                    self.promised = ballot;
                    self.leader_hint = Some(from);
                    self.heard_from_leader = true;
                    self.follow_commits(ctx, commit_index);
                }
            }
            RsmMsg::Propose { cmd, req } => {
                if self.role == Role::Leader {
                    let slot = self.next_slot;
                    self.next_slot += 1;
                    self.propose_in_slot(ctx, slot, cmd, Some((from, req)));
                } else {
                    ctx.send(
                        from,
                        RsmMsg::ProposeReply {
                            req,
                            committed: false,
                            slot: None,
                            leader_hint: self.leader_hint,
                        },
                    );
                }
            }
            RsmMsg::Query { q, req } => {
                if self.role == Role::Leader {
                    let result = self.app.query(&q);
                    ctx.send(
                        from,
                        RsmMsg::QueryReply {
                            req,
                            ok: true,
                            result: Some(result),
                            leader_hint: Some(self.my_id()),
                        },
                    );
                } else {
                    ctx.send(
                        from,
                        RsmMsg::QueryReply {
                            req,
                            ok: false,
                            result: None,
                            leader_hint: self.leader_hint,
                        },
                    );
                }
            }
            RsmMsg::ProposeReply { .. } | RsmMsg::QueryReply { .. } => {
                // Client-side messages; an RSM member ignores them.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mams_sim::{Sim, SimConfig, SimTime};
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// Test app: accumulates applied commands.
    struct VecApp {
        applied: Arc<Mutex<Vec<Value>>>,
    }

    impl RsmApp for VecApp {
        fn apply(&mut self, _slot: u64, cmd: &Value) {
            self.applied.lock().push(cmd.clone());
        }
        fn query(&mut self, _q: &Value) -> Value {
            Bytes::from(format!("len={}", self.applied.lock().len()))
        }
    }

    /// Client that retries proposals against whatever leader it can find.
    struct TestClient {
        members: Vec<NodeId>,
        cmds: Vec<Value>,
        next: usize,
        target: usize,
        committed: Arc<Mutex<Vec<u64>>>,
        req: u64,
    }

    impl Node for TestClient {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(Duration::from_millis(300), 1);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            if self.next < self.cmds.len() {
                self.req += 1;
                let cmd = self.cmds[self.next].clone();
                ctx.send(self.members[self.target], RsmMsg::Propose { cmd, req: self.req });
                ctx.set_timer(Duration::from_millis(700), 1);
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
            if let Ok(RsmMsg::ProposeReply { committed, slot, leader_hint, .. }) =
                msg.downcast::<RsmMsg>()
            {
                if committed {
                    self.committed.lock().push(slot.unwrap());
                    self.next += 1;
                } else if let Some(hint) = leader_hint {
                    if let Some(i) = self.members.iter().position(|&m| m == hint) {
                        self.target = i;
                    }
                } else {
                    self.target = (self.target + 1) % self.members.len();
                }
                let _ = from;
            }
        }
    }

    type SharedLog = Arc<Mutex<Vec<Value>>>;

    fn build_cluster(sim: &mut Sim, n: usize) -> (Vec<NodeId>, Vec<SharedLog>) {
        let ids: Vec<NodeId> = (0..n as u32).collect();
        let mut logs = Vec::new();
        for i in 0..n {
            let applied = Arc::new(Mutex::new(Vec::new()));
            logs.push(applied.clone());
            let cfg = RsmConfig::new(ids.clone(), i as u32);
            let id =
                sim.add_node(format!("rsm-{i}"), Box::new(RsmNode::new(cfg, VecApp { applied })));
            assert_eq!(id, ids[i]);
        }
        (ids, logs)
    }

    #[test]
    fn cluster_elects_and_replicates() {
        let mut sim = Sim::new(SimConfig::default());
        let (ids, logs) = build_cluster(&mut sim, 3);
        let committed = Arc::new(Mutex::new(Vec::new()));
        let cmds: Vec<Value> = (0..5).map(|i| Bytes::from(format!("cmd-{i}"))).collect();
        sim.add_node(
            "client",
            Box::new(TestClient {
                members: ids.clone(),
                cmds: cmds.clone(),
                next: 0,
                target: 0,
                committed: committed.clone(),
                req: 0,
            }),
        );
        sim.run_for(Duration::from_secs(30));
        assert_eq!(committed.lock().len(), 5, "all proposals commit");
        // Every member applied the same sequence.
        for log in &logs {
            assert_eq!(*log.lock(), cmds, "replica log diverged");
        }
    }

    #[test]
    fn leader_crash_triggers_reelection_and_no_loss() {
        let mut sim = Sim::new(SimConfig::default());
        let (ids, logs) = build_cluster(&mut sim, 3);
        let committed = Arc::new(Mutex::new(Vec::new()));
        let cmds: Vec<Value> = (0..8).map(|i| Bytes::from(format!("c{i}"))).collect();
        sim.add_node(
            "client",
            Box::new(TestClient {
                members: ids.clone(),
                cmds: cmds.clone(),
                next: 0,
                target: 0,
                committed: committed.clone(),
                req: 0,
            }),
        );
        // Let some commits land, then kill whichever node committed most
        // (a good proxy for the leader) at t=10s.
        sim.at(SimTime(10_000_000), {
            let logs = logs.clone();
            move |sim| {
                let leader = (0..logs.len()).max_by_key(|&i| logs[i].lock().len()).unwrap();
                sim.crash(leader as NodeId);
            }
        });
        sim.run_for(Duration::from_secs(60));
        let done = committed.lock().len();
        assert_eq!(done, 8, "commits resume after failover (got {done})");
        // The two survivors agree on a common prefix containing all
        // committed commands.
        let alive: Vec<Vec<Value>> =
            logs.iter().map(|l| l.lock().clone()).filter(|l| l.len() == 8).collect();
        assert!(!alive.is_empty());
        for l in &alive {
            assert_eq!(*l, cmds);
        }
    }

    #[test]
    fn five_node_cluster_survives_two_crashes() {
        let mut sim = Sim::new(SimConfig::default());
        let (ids, logs) = build_cluster(&mut sim, 5);
        let committed = Arc::new(Mutex::new(Vec::new()));
        let cmds: Vec<Value> = (0..6).map(|i| Bytes::from(format!("x{i}"))).collect();
        sim.add_node(
            "client",
            Box::new(TestClient {
                members: ids.clone(),
                cmds: cmds.clone(),
                next: 0,
                target: 2,
                committed: committed.clone(),
                req: 0,
            }),
        );
        sim.at(SimTime(8_000_000), move |sim| sim.crash(0));
        sim.at(SimTime(16_000_000), move |sim| sim.crash(1));
        sim.run_for(Duration::from_secs(90));
        assert_eq!(committed.lock().len(), 6);
        let full: Vec<_> = logs.iter().filter(|l| l.lock().len() == 6).collect();
        assert!(full.len() >= 3, "a quorum of replicas holds the full log");
    }
}
