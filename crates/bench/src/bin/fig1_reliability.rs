//! Figure 1: system reliability vs node count for per-node MTBF of 10^5 and
//! 10^6 hours (the paper's motivation figure; analytic model).

use mams_bench::{print_table, save_json};
use mams_sim::reliability::{reliability_series, system_mtbf_hours};

fn main() {
    let counts: Vec<u64> =
        vec![1, 10, 100, 1_000, 5_000, 10_000, 50_000, 100_000, 131_000, 200_000];
    let mission_hours = 24.0;
    let lo = reliability_series(&counts, 1e5, mission_hours);
    let hi = reliability_series(&counts, 1e6, mission_hours);

    let rows: Vec<Vec<String>> = counts
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            vec![
                n.to_string(),
                format!("{:.4}", lo[i].1),
                format!("{:.4}", hi[i].1),
                format!("{:.1}", system_mtbf_hours(n, 1e5)),
                format!("{:.1}", system_mtbf_hours(n, 1e6)),
            ]
        })
        .collect();
    print_table(
        "Figure 1: reliability over a 24h mission vs cluster size",
        &["nodes", "R (MTBF 1e5h)", "R (MTBF 1e6h)", "sys MTBF 1e5 (h)", "sys MTBF 1e6 (h)"],
        &rows,
    );
    println!(
        "\nBlue Gene/L scale (131k nodes, per-node MTBF 9e5h): system MTBF = {:.1} h (paper: below 7 h)",
        system_mtbf_hours(131_000, 9e5)
    );
    save_json(
        "fig1_reliability",
        &serde_json::json!({
            "mission_hours": mission_hours,
            "series": {
                "mtbf_1e5": lo.iter().map(|(n, r)| serde_json::json!([n, r])).collect::<Vec<_>>(),
                "mtbf_1e6": hi.iter().map(|(n, r)| serde_json::json!([n, r])).collect::<Vec<_>>(),
            },
        }),
    );
}
