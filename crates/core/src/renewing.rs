//! The renewing protocol: upgrading juniors back to hot standbys.
//!
//! "During the runtime, the active scans the global view periodically and
//! tries to launch the renewing process when there are juniors. It selects
//! one server with the least gap in namespace state and creates a session
//! for recovery at each time." (Section III-D.)
//!
//! The junior drives its own catch-up against the SSP — image first when
//! the `sn` gap is large (resumable, chunked), then journal pages — and
//! reports progress. When the gap is small the active launches the final
//! synchronization stage: it adds the junior to the live sync set and ships
//! the remaining batches directly; once the junior acknowledges the tail
//! `sn`, the active promotes it and the junior announces itself a standby.

use mams_journal::{JournalLog, ReplayCursor, SharedBatch, Sn};
use mams_namespace::StreamingImageDecoder;
use mams_sim::{Ctx, NodeId};
use mams_storage::proto::{PoolReq, PoolResp};
use mams_storage::{ArtifactId, ArtifactKind, ManifestEntry, PoolError};

use crate::proto::GroupMsg;
use crate::server::{Catchup, CatchupStage, MdsServer, PoolCtx, RenewDriver, Role};

impl MdsServer {
    // ---------------------------------------------------- active side

    /// Periodic scan for juniors needing renewal (one session at a time).
    /// A session that makes no progress for several scans (lost messages,
    /// silently dead junior) is abandoned so another can start.
    pub(crate) fn renew_scan(&mut self, ctx: &mut Ctx<'_>) {
        if self.role != Role::Active {
            return;
        }
        if let Some(d) = self.renew_driver.as_mut() {
            d.stale_scans += 1;
            if d.stale_scans > 5 {
                ctx.trace("renew.session_stalled", || format!("junior n{}", d.junior));
                self.renew_driver = None;
            } else {
                return;
            }
        }
        // Registered members currently in junior state, by least gap
        // (highest sn) first.
        let juniors = self.members_in_state("J");
        let candidate =
            juniors.iter().filter_map(|&n| self.member_sns.get(&n).map(|&sn| (sn, n))).max();
        if let Some((sn, junior)) = candidate {
            let tip = self.log.tail_sn();
            ctx.trace("renew.session_start", || format!("junior n{junior} sn {sn} tip {tip}"));
            self.renew_driver = Some(RenewDriver { junior, last_progress_sn: sn, stale_scans: 0 });
            ctx.send(junior, GroupMsg::RenewStart { tip_sn: tip });
        }
    }

    /// Junior progress report. When the gap is small, enter the final
    /// synchronization stage.
    pub(crate) fn on_renew_progress(&mut self, ctx: &mut Ctx<'_>, from: NodeId, sn: Sn) {
        if self.role != Role::Active {
            return;
        }
        let driver = match self.renew_driver.as_mut() {
            Some(d) if d.junior == from => d,
            _ => return,
        };
        driver.last_progress_sn = sn;
        driver.stale_scans = 0;
        self.member_sns.insert(from, sn);
        let tail = self.log.tail_sn();
        if tail.saturating_sub(sn) <= self.cfg.timing.renew_final_gap {
            // Final stage: live-sync from now on + ship the missing range.
            self.standbys.insert(from);
            match self.log.read_after(sn) {
                Some(batches) if !batches.is_empty() => {
                    // Shared handles into our log — shipping the range is
                    // reference-count bumps, not a copy of the records.
                    let batches: Vec<SharedBatch> =
                        batches.iter().map(SharedBatch::share).collect();
                    ctx.trace("renew.final_sync", || {
                        format!("n{from}: {} batches to tail {tail}", batches.len())
                    });
                    ctx.send(from, GroupMsg::RenewJournal { epoch: self.epoch, batches });
                }
                Some(_) => {
                    // Already at the tail; promote on its next ack (or now).
                    if sn == tail {
                        self.promote_junior(ctx, from);
                    }
                }
                None => {
                    // The range was compacted from our local log (rare:
                    // checkpoint raced the session). Let the junior keep
                    // pulling from the pool.
                    self.standbys.remove(&from);
                }
            }
        }
    }

    /// Called from the SyncAck path: a renewing junior that acknowledges
    /// our tail is fully synchronized — flip it to standby in the view.
    pub(crate) fn renew_check_promotion(&mut self, ctx: &mut Ctx<'_>, from: NodeId, sn: Sn) {
        if self.role != Role::Active {
            return;
        }
        let is_session_junior = self.renew_driver.as_ref().is_some_and(|d| d.junior == from);
        if is_session_junior && sn == self.log.tail_sn() {
            self.promote_junior(ctx, from);
        }
    }

    fn promote_junior(&mut self, ctx: &mut Ctx<'_>, junior: NodeId) {
        ctx.trace("renew.promoted", || format!("n{junior}"));
        self.renew_driver = None;
        self.standbys.insert(junior);
        ctx.send(
            junior,
            GroupMsg::RegisterAck {
                as_standby: true,
                epoch: self.epoch,
                tail_sn: self.log.tail_sn(),
            },
        );
    }

    // ---------------------------------------------------- junior side

    /// The active opened a renewing session with us.
    pub(crate) fn on_renew_start(&mut self, ctx: &mut Ctx<'_>, from: NodeId, tip_sn: Sn) {
        if self.role != Role::Junior {
            return;
        }
        self.active_hint = Some(from);
        let gap = tip_sn.saturating_sub(self.cursor.max_sn());
        ctx.trace("renew.begin", || format!("gap {gap}"));
        if let Some(c) = &self.catchup {
            // Resume an interrupted session from its checkpoint instead of
            // retransmitting everything. Re-resolving the manifest first
            // confirms the planned artifacts still exist (compaction may
            // have GC'd them while we were away).
            if let CatchupStage::Chain { idx, offset, .. } = &c.stage {
                ctx.trace("renew.resume", || format!("chain idx {idx} offset {offset}"));
                self.request_manifest(ctx, false);
                return;
            }
        }
        if gap > self.cfg.timing.renew_image_gap {
            self.start_image_fetch(ctx, false);
        } else {
            // The session start tells us the active's tip, so the request
            // window can open fully on the first pump.
            self.enter_journal_stage(ctx, false, tip_sn);
        }
    }

    /// Begin (or resume) fetching checkpoint state from the pool. The
    /// manifest decides what actually moves: the full base image only when
    /// our state predates it, otherwise just the deltas past our sn —
    /// recovery bytes proportional to churn, not namespace size.
    pub(crate) fn start_image_fetch(&mut self, ctx: &mut Ctx<'_>, for_upgrade: bool) {
        let keep = matches!(&self.catchup, Some(Catchup { stage: CatchupStage::Chain { .. } }));
        if !keep {
            self.catchup = Some(Catchup { stage: CatchupStage::Manifest });
        }
        self.request_manifest(ctx, for_upgrade);
    }

    fn request_manifest(&mut self, ctx: &mut Ctx<'_>, for_upgrade: bool) {
        let group = self.cfg.group;
        self.pool_send(
            ctx,
            move |req| PoolReq::ReadManifest { group, req },
            PoolCtx::Manifest { for_upgrade },
        );
    }

    fn request_artifact_chunk(
        &mut self,
        ctx: &mut Ctx<'_>,
        artifact: ArtifactId,
        offset: u64,
        for_upgrade: bool,
    ) {
        let group = self.cfg.group;
        let len = self.cfg.timing.image_chunk;
        self.pool_send(
            ctx,
            move |req| PoolReq::ReadArtifactChunk { group, artifact, offset, len, req },
            PoolCtx::ArtifactChunk { for_upgrade },
        );
    }

    /// Switch the catch-up session into the journal stage and start the
    /// request window. `tail_hint` is the highest journal sn we know the
    /// pool holds (0 when unknown — the first response teaches us).
    fn enter_journal_stage(&mut self, ctx: &mut Ctx<'_>, for_upgrade: bool, tail_hint: Sn) {
        self.catchup = Some(Catchup {
            stage: CatchupStage::Journal {
                inflight: 0,
                next_after: self.cursor.max_sn(),
                tail_hint,
            },
        });
        self.pump_journal_pages(ctx, for_upgrade);
    }

    /// Top up the journal-page request window: keep up to `catchup_window`
    /// page reads in flight, each asking for the page after the previous
    /// request's range, so the pool RTT overlaps local replay. Responses
    /// may arrive out of order; the stash/cursor machinery in
    /// `ingest_batch` reassembles them contiguously.
    fn pump_journal_pages(&mut self, ctx: &mut Ctx<'_>, for_upgrade: bool) {
        let page = self.cfg.timing.catchup_page as u64;
        let window = self.cfg.timing.catchup_window.max(1);
        loop {
            let applied = self.cursor.max_sn();
            let after = {
                let Some(Catchup {
                    stage: CatchupStage::Journal { inflight, next_after, tail_hint },
                }) = self.catchup.as_mut()
                else {
                    return;
                };
                if *inflight >= window {
                    return;
                }
                if *inflight == 0 {
                    // The window drained: anchor speculation back to the
                    // contiguously applied position. This re-requests any
                    // range whose response was lost instead of stalling on
                    // the hole forever.
                    *next_after = applied;
                } else if *next_after >= *tail_hint {
                    // Nothing known beyond this point; the in-flight
                    // responses will refresh the tail hint.
                    return;
                }
                let after = *next_after;
                *next_after = after.saturating_add(page);
                *inflight += 1;
                after
            };
            let group = self.cfg.group;
            let max = self.cfg.timing.catchup_page;
            self.pool_send(
                ctx,
                move |req| PoolReq::ReadJournal { group, after_sn: after, max, req },
                PoolCtx::CatchupPage { for_upgrade },
            );
        }
    }

    /// The pool's manifest chain arrived: plan which artifacts we need.
    pub(crate) fn on_manifest(&mut self, ctx: &mut Ctx<'_>, resp: PoolResp, for_upgrade: bool) {
        if self.catchup.is_none() {
            return;
        }
        let manifest = match resp {
            PoolResp::ManifestInfo { manifest, .. } => manifest,
            other => {
                ctx.trace("renew.manifest_error", || format!("{other:?}"));
                return;
            }
        };
        // Mid-chain resume: if everything we still need is listed in the
        // fresh manifest, continue from the checkpointed offset instead of
        // replanning (nothing was compacted away under us).
        if let Some(Catchup { stage: CatchupStage::Chain { plan, idx, offset, .. } }) =
            self.catchup.as_ref()
        {
            if *idx < plan.len()
                && plan[*idx..].iter().all(|e| manifest.chain.iter().any(|m| m.id == e.id))
            {
                let (artifact, offset) = (plan[*idx].id, *offset);
                self.request_artifact_chunk(ctx, artifact, offset, for_upgrade);
                return;
            }
        }
        let applied = self.cursor.max_sn();
        if manifest.is_empty() || manifest.end_sn() <= applied {
            // Nothing checkpointed past our state: journal replay only.
            self.enter_journal_stage(ctx, for_upgrade, 0);
            return;
        }
        let base_sn = manifest.base().expect("non-empty manifest").end_sn;
        // The base moves only when our state predates it; a delta covering
        // `(N, M]` applies from any applied sn in `[N, M]`
        // (`mams_namespace::delta`'s apply-anywhere invariant), so every
        // delta ending past our sn is both needed and applicable.
        let plan: Vec<ManifestEntry> = manifest
            .chain
            .iter()
            .filter(|e| match e.kind {
                ArtifactKind::Base => applied < base_sn,
                ArtifactKind::Delta => e.end_sn > applied,
            })
            .cloned()
            .collect();
        if plan.is_empty() {
            self.enter_journal_stage(ctx, for_upgrade, 0);
            return;
        }
        ctx.trace("renew.chain_plan", || {
            let bytes: u64 = plan.iter().map(|e| e.bytes).sum();
            format!(
                "{} artifacts {} B (applied {applied}, chain end {})",
                plan.len(),
                bytes,
                manifest.end_sn()
            )
        });
        let first = plan[0].clone();
        let decoder = (first.kind == ArtifactKind::Base).then(|| {
            let mut d = Box::new(StreamingImageDecoder::new());
            d.reserve_hint(first.bytes);
            d
        });
        self.catchup = Some(Catchup {
            stage: CatchupStage::Chain { plan, idx: 0, offset: 0, decoder, buf: Vec::new() },
        });
        self.request_artifact_chunk(ctx, first.id, 0, for_upgrade);
    }

    /// A chunk of the current chain artifact arrived.
    pub(crate) fn on_artifact_chunk(
        &mut self,
        ctx: &mut Ctx<'_>,
        resp: PoolResp,
        for_upgrade: bool,
    ) {
        let (artifact, chunk_offset, data, total) = match resp {
            PoolResp::ArtifactChunk { artifact, offset, data, total, .. } => {
                (artifact, offset, data, total)
            }
            PoolResp::Failed { error: PoolError::NoSuchArtifact { id }, .. } => {
                // Our manifest went stale: compaction GC'd the artifact
                // between the plan and this read. Re-resolve and replan
                // against the merged chain (satellite of the crash-safe
                // compaction swap).
                ctx.trace("renew.manifest_stale", || format!("artifact {id} gone"));
                if let Some(Catchup { stage: CatchupStage::Chain { plan, .. } }) =
                    self.catchup.as_mut()
                {
                    plan.clear(); // force a replan; resume check can't hold
                }
                self.request_manifest(ctx, for_upgrade);
                return;
            }
            other => {
                ctx.trace("renew.chunk_error", || format!("{other:?}"));
                self.request_manifest(ctx, for_upgrade);
                return;
            }
        };
        // Feed the chunk into the current artifact's sink: the base goes
        // straight into the streaming decoder (the tree is rebuilt as bytes
        // arrive, no whole-image buffer); a delta accumulates in `buf`.
        enum Step {
            More(ArtifactId, u64),
            BaseDone,
            DeltaDone,
            Corrupt(String),
        }
        let step = {
            let Some(Catchup { stage: CatchupStage::Chain { plan, idx, offset, decoder, buf } }) =
                self.catchup.as_mut()
            else {
                return; // stale chunk after a stage change
            };
            let Some(entry) = plan.get(*idx) else { return };
            if entry.id != artifact || chunk_offset != *offset {
                // A duplicate/stale stream (e.g. a resumed session racing
                // the original): exactly one stream may advance the cursor.
                return;
            }
            let done = *offset + data.len() as u64 >= total || data.is_empty();
            match entry.kind {
                ArtifactKind::Base => {
                    let d = decoder.get_or_insert_with(|| Box::new(StreamingImageDecoder::new()));
                    match d.push(&data) {
                        Ok(()) => {
                            *offset += data.len() as u64;
                            if done {
                                Step::BaseDone
                            } else {
                                Step::More(entry.id, *offset)
                            }
                        }
                        Err(e) => Step::Corrupt(e.to_string()),
                    }
                }
                ArtifactKind::Delta => {
                    buf.extend_from_slice(&data);
                    *offset += data.len() as u64;
                    if done {
                        Step::DeltaDone
                    } else {
                        Step::More(entry.id, *offset)
                    }
                }
            }
        };
        match step {
            Step::More(id, offset) => self.request_artifact_chunk(ctx, id, offset, for_upgrade),
            Step::BaseDone => self.finish_base_artifact(ctx, for_upgrade),
            Step::DeltaDone => self.finish_delta_artifact(ctx, for_upgrade),
            Step::Corrupt(e) => {
                ctx.trace("renew.image_corrupt", || e);
                // A corrupt *base* has no cheaper fallback: restart the
                // whole resolve (a fresh checkpoint will replace it).
                self.catchup = Some(Catchup { stage: CatchupStage::Manifest });
                self.request_manifest(ctx, for_upgrade);
            }
        }
    }

    /// The base image is fully transferred: verify, adopt, move down the
    /// plan.
    fn finish_base_artifact(&mut self, ctx: &mut Ctx<'_>, for_upgrade: bool) {
        let decoder = match self.catchup.as_mut() {
            Some(Catchup { stage: CatchupStage::Chain { decoder, .. } }) => decoder.take(),
            _ => return,
        };
        let Some(decoder) = decoder else { return };
        match decoder.finish_with_window() {
            Ok((tree, image_sn, window)) => {
                ctx.trace("renew.image_loaded", || format!("checkpoint sn {image_sn}"));
                self.ns = mams_namespace::ShardedNamespace::from_tree(tree);
                // The image's retry window is the writer's window at
                // `image_sn`; adopting it keeps the window a function of
                // the journal prefix even though we never saw the batches.
                self.window = window;
                self.replay.reset();
                self.log = JournalLog::with_base(image_sn);
                self.cursor = ReplayCursor::at(image_sn);
                self.stash.clear();
                self.advance_chain(ctx, for_upgrade);
            }
            Err(e) => {
                ctx.trace("renew.image_corrupt", || e.to_string());
                self.catchup = Some(Catchup { stage: CatchupStage::Manifest });
                self.request_manifest(ctx, for_upgrade);
            }
        }
    }

    /// A delta artifact is fully buffered: decode, verify, apply.
    fn finish_delta_artifact(&mut self, ctx: &mut Ctx<'_>, for_upgrade: bool) {
        let buf = match self.catchup.as_mut() {
            Some(Catchup { stage: CatchupStage::Chain { buf, .. } }) => std::mem::take(buf),
            _ => return,
        };
        let applied = self.cursor.max_sn();
        let outcome = mams_namespace::decode_delta(&buf).map_err(|e| e.to_string()).and_then(|d| {
            if applied < d.base_sn {
                // A hole in front of this delta (should not happen on a
                // well-formed chain): applying it would skip records.
                return Err(format!("delta chains onto {} but we are at {applied}", d.base_sn));
            }
            mams_namespace::apply_delta(&mut self.ns, &d).map_err(|e| e.to_string())?;
            Ok((d.end_sn, d.window))
        });
        match outcome {
            Ok((end_sn, window)) => {
                ctx.trace("renew.delta_applied", || format!("to sn {end_sn}"));
                // Adopt the delta's retry window (it reflects `end_sn`); an
                // empty section means no acks were ever journaled in the
                // writer's window — keep what we have (same policy as pool
                // compaction).
                if !window.is_empty() {
                    self.window = window;
                }
                // The delta advanced us past records we never saw as
                // batches: rebase the local log exactly like an image load.
                self.replay.reset();
                self.log = JournalLog::with_base(end_sn);
                self.cursor = ReplayCursor::at(end_sn);
                self.stash.clear();
                self.advance_chain(ctx, for_upgrade);
            }
            Err(e) => {
                // Corrupt (or unexpectedly disjoint) delta: drop the rest
                // of the chain and fall back one rung — windowed journal
                // catch-up from our applied sn. The pool retains the
                // journal from the base checkpoint, so the range is there;
                // if a compaction truncates it meanwhile, the `compacted`
                // reply re-resolves a fresh manifest.
                ctx.trace("renew.delta_corrupt", || e);
                self.enter_journal_stage(ctx, for_upgrade, 0);
            }
        }
    }

    /// Move to the next planned artifact, or into journal catch-up when the
    /// chain is exhausted.
    fn advance_chain(&mut self, ctx: &mut Ctx<'_>, for_upgrade: bool) {
        // Report progress so the active's renewing session sees movement
        // even while large artifacts stream.
        let sn = self.cursor.max_sn();
        if !for_upgrade {
            if let Some(active) = self.active_hint {
                if active != ctx.id() {
                    ctx.send(active, GroupMsg::RenewProgress { sn });
                }
            }
        }
        let next = {
            let Some(Catchup { stage: CatchupStage::Chain { plan, idx, offset, decoder, buf } }) =
                self.catchup.as_mut()
            else {
                return;
            };
            *idx += 1;
            *offset = 0;
            buf.clear();
            *decoder = None;
            plan.get(*idx).map(|e| e.id)
        };
        match next {
            Some(id) => self.request_artifact_chunk(ctx, id, 0, for_upgrade),
            None => self.enter_journal_stage(ctx, for_upgrade, 0),
        }
    }

    pub(crate) fn on_catchup_page(&mut self, ctx: &mut Ctx<'_>, resp: PoolResp, for_upgrade: bool) {
        if for_upgrade && self.role != Role::Upgrading {
            // A straggler from a finished (or abandoned) upgrade; acting on
            // it could re-run `finish_upgrade`.
            return;
        }
        // Account the response against the request window. A page arriving
        // after the stage changed (image restart, session reset) is stale:
        // drop it rather than corrupt another stage's bookkeeping.
        {
            let Some(Catchup { stage: CatchupStage::Journal { inflight, .. } }) =
                self.catchup.as_mut()
            else {
                return;
            };
            *inflight = inflight.saturating_sub(1);
        }
        let (batches, tail_sn, compacted) = match resp {
            PoolResp::Journal { batches, tail_sn, compacted, .. } => (batches, tail_sn, compacted),
            other => {
                ctx.trace("renew.page_error", || format!("{other:?}"));
                // Keep the pipeline moving despite the failed read.
                self.pump_journal_pages(ctx, for_upgrade);
                return;
            }
        };
        if compacted {
            // Checkpoint raced us; restart from the image.
            self.start_image_fetch(ctx, for_upgrade);
            return;
        }
        for b in batches {
            self.ingest_batch(b);
        }
        self.note_divergence(ctx);
        if let Some(Catchup { stage: CatchupStage::Journal { tail_hint, .. } }) =
            self.catchup.as_mut()
        {
            *tail_hint = (*tail_hint).max(tail_sn);
        }
        let caught_up = self.cursor.max_sn() >= tail_sn;
        if for_upgrade {
            if caught_up {
                self.finish_upgrade(ctx);
            } else {
                self.pump_journal_pages(ctx, true);
            }
            return;
        }
        // Renewing: report progress; keep paging until we reach the
        // shared journal's tail, then wait for the final stage.
        let sn = self.cursor.max_sn();
        if let Some(active) = self.active_hint {
            if active != ctx.id() {
                ctx.send(active, GroupMsg::RenewProgress { sn });
            }
        }
        if caught_up {
            if let Some(c) = self.catchup.as_mut() {
                c.stage = CatchupStage::Final;
            }
        } else {
            self.pump_journal_pages(ctx, false);
        }
    }

    /// The active shipped the final-synchronization range directly.
    pub(crate) fn on_renew_journal(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        epoch: u64,
        batches: Vec<SharedBatch>,
    ) {
        if epoch < self.group_epoch || matches!(self.role, Role::Active | Role::Upgrading) {
            return;
        }
        self.group_epoch = epoch;
        self.active_hint = Some(from);
        for b in batches {
            self.ingest_batch(b);
        }
        self.note_divergence(ctx);
        ctx.send(from, GroupMsg::SyncAck { sn: self.cursor.max_sn() });
    }
}
